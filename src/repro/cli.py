"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro table1          # Table 1 memory comparison
    python -m repro table2          # Table 2 allowable k
    python -m repro table3          # Table 3 modeled speedups + measured error
    python -m repro table4          # Table 4 estimated vs actual memory
    python -m repro fig1            # Figure 1 communication rounds
    python -m repro fig3            # Figure 3 octree pattern
    python -m repro eq6             # Eq 1 vs Eq 6 sweep
    python -m repro batch           # batch-parameter sweep (§5.4)
    python -m repro massif          # Algorithm 1 vs 2 convergence (§5.3)
    python -m repro commshift       # §2.1 compute-to-communication story
    python -m repro all             # everything
    python -m repro pipeline --mode parallel --workers 4
                                    # run the end-to-end pipeline itself
    python -m repro serve-bench --requests 16
                                    # batched serving vs naive baseline
    python -m repro serve --backend pool://file:///tmp/rdv --ranks 4
                                    # dist-backed serving on a standing pool
    python -m repro dist-run --ranks 4 --transport tcp
                                    # real multi-process SPMD run
    python -m repro lint src tests  # project-specific static analysis
    python -m repro xpr run --experiment ref-quick
                                    # drain an experiment grid
    python -m repro xpr gate        # fail on perf regression vs history
    python -m repro pool up --rendezvous file:///tmp/rdv --ranks 4
                                    # standing rank pool (see pool --help)

Exit codes: 0 on success, 1 when ``lint`` reports findings, 2 on bad
arguments or configuration errors (argparse errors also exit 2), with a
one-line message on stderr — never a traceback for a user mistake.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.analysis import experiments as ex
from repro.analysis.tables import format_table
from repro.cluster.trace import gpu_acceleration_story
from repro.errors import ReproError


def _table1() -> None:
    print(ex.run_table1_memory().render())


def _table2() -> None:
    print(ex.run_table2_allowable_k().render())
    plain, ours = ex.dense_gpu_ceiling()
    print(f"\nsingle-GPU ceiling: dense cuFFT N={plain}, ours N={ours} "
          f"({(ours / plain) ** 3:.0f}x more points)")


def _table3() -> None:
    rows, report = ex.run_table3_speedup()
    print(report.render())
    print()
    print(
        format_table(
            ["N", "k", "r", "ours (ms)", "FFTW (ms)", "speedup"],
            [[r.n, r.k, r.r, r.ours_ms, r.fftw_ms, r.speedup] for r in rows],
            title="Table 3 (modeled)",
        )
    )
    err = ex.measure_table3_error()
    print(f"\nmeasured L2 error (N=128, k=32, banded): {err:.4f} (paper <= 0.03)")


def _table4() -> None:
    print(ex.run_table4_memory().render())


def _fig1() -> None:
    res = ex.run_fig1_comm_rounds()
    print(
        format_table(
            ["pipeline", "all-to-all rounds", "bytes"],
            [
                ["traditional (pencil)", res.traditional_rounds, res.traditional_bytes],
                ["ours", res.ours_rounds, res.ours_bytes],
            ],
            title="Figure 1",
        )
    )


def _fig3() -> None:
    res = ex.run_fig3_octree()
    print(
        format_table(
            ["rate", "samples"],
            sorted(res.rate_histogram.items()),
            title=f"Figure 3: {res.num_cells} cells, {res.compression_ratio:.1f}x",
        )
    )
    print(res.ascii_slice)


def _eq6() -> None:
    print(
        format_table(
            ["P", "T_fft (s)", "T_ours (s)", "advantage"],
            ex.run_comm_time_sweep(),
            title="Eq 1 vs Eq 6",
        )
    )


def _batch() -> None:
    print(ex.run_batch_sweep().render())


def _massif() -> None:
    res = ex.run_massif_convergence()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["Alg 1 iterations", res.alg1_iterations],
                ["Alg 2 iterations", res.alg2_iterations],
                ["Alg 2 stalled", res.alg2_stalled],
                ["best residual", res.alg2_best_residual],
                ["effective stress error", res.effective_stress_error],
                ["strain field error", res.strain_field_error],
            ],
            title="MASSIF Alg 1 vs Alg 2",
        )
    )


def _report() -> None:
    from repro.analysis.generate_report import generate_report

    print(generate_report(fast=True))


def _commshift() -> None:
    rows = gpu_acceleration_story()
    print(
        format_table(
            ["configuration", "communication fraction"],
            rows,
            title="§2.1: why GPUs make it worse",
        )
    )


def _pipeline(args: argparse.Namespace) -> None:
    """Run the end-to-end pipeline once and report timing + error."""
    import numpy as np

    from repro.core.pipeline import LowCommConvolution3D
    from repro.core.reference import reference_convolve
    from repro.kernels.gaussian import GaussianKernel

    n, k = args.n, args.k
    kernel = GaussianKernel(n=n, sigma=args.sigma)
    spectrum = kernel.spectrum()
    rng = np.random.default_rng(args.seed)
    # Composite-like input: signal confined to the central half-cube
    # (white noise everywhere is the worst case for compressed sampling
    # and not what the error analysis targets).
    field = np.zeros((n, n, n))
    q = n // 4
    field[q : n - q, q : n - q, q : n - q] = rng.standard_normal((n - 2 * q,) * 3)
    pipeline = LowCommConvolution3D(
        n, k, spectrum, real_kernel=args.real_kernel
    )
    if args.mode == "parallel":
        result = pipeline.run_parallel(field, max_workers=args.workers)
    else:
        result = pipeline.run_serial(field)
    exact = reference_convolve(field, spectrum)
    err = float(np.max(np.abs(result.approx - exact)))
    rel = float(np.linalg.norm(result.approx - exact) / np.linalg.norm(exact))
    print(
        format_table(
            ["quantity", "value"],
            [
                ["mode", args.mode],
                ["n / k", f"{n} / {k}"],
                ["sub-domains convolved", result.num_subdomains],
                ["total samples", result.total_samples],
                ["compression ratio", f"{result.compression_ratio:.1f}x"],
                ["hermitian fast path", pipeline.local.real_kernel],
                ["elapsed (s)", f"{result.elapsed_s:.3f}"],
                ["max abs error vs dense", f"{err:.3e}"],
                ["relative L2 error", f"{rel:.3e}"],
            ],
            title="pipeline run",
        )
    )


def _dist_run(args: argparse.Namespace) -> None:
    """Run the pipeline as a real SPMD job and validate it end to end."""
    import numpy as np

    from repro.dist.launcher import default_spectrum, dist_run
    from repro.dist.worker import DistConfig, build_pipeline, composite_field

    config = DistConfig(
        n=args.n,
        k=args.k,
        sigma=args.sigma,
        policy=args.policy,
        num_ranks=args.ranks,
        transport=args.transport,
        seed=args.seed,
        real_kernel=args.real_kernel,
        overlap=args.overlap,
        window=args.window,
    )
    field = composite_field(config.n, config.seed)
    spectrum = default_spectrum(config)
    report = dist_run(config, field=field, spectrum=spectrum)
    serial = build_pipeline(config, spectrum).run_serial(field)
    bitwise = bool(np.array_equal(report.approx, serial.approx))
    rows = [
        ["transport / ranks", f"{config.transport} / {config.num_ranks}"],
        ["n / k / policy", f"{config.n} / {config.k} / {config.policy}"],
        [
            "exchange mode",
            f"streamed (window {config.window})" if config.overlap else "barrier",
        ],
        ["bitwise identical to run_serial", bitwise],
        ["failed ranks", report.failed_ranks or "none"],
        ["recovered from checkpoints", report.recovered],
        ["exchange wire bytes (measured)", report.exchange_wire_bytes],
        ["exchange value bytes (Eq 6 exact)", report.predicted_value_bytes],
        ["wire / model ratio", f"{report.wire_over_model:.4f}"],
        ["slowest rank compute (s)", f"{report.max_compute_s:.3f}"],
        ["slowest rank exchange (s)", f"{report.max_exchange_s:.3f}"],
        ["exchange hidden behind compute (s)", f"{report.max_exchange_hidden_s:.3f}"],
        ["elapsed (s)", f"{report.elapsed_s:.3f}"],
    ]
    print(format_table(["quantity", "value"], rows, title="dist-run"))


def _lint(args: argparse.Namespace) -> int:
    """Run the repro lint rules; exit 0 clean, 1 with findings."""
    from repro.analysis.engine import LintEngine

    engine = LintEngine()
    findings = engine.run(args.paths or ["src"])
    if args.format == "json":
        sys.stdout.write(engine.to_json(findings))
    else:
        sys.stdout.write(
            engine.to_text(findings, timings=getattr(args, "timing", False))
        )
    return 1 if any(f.severity == "error" for f in findings) else 0


def _serve_bench(args: argparse.Namespace) -> None:
    """Benchmark batched serving against the naive per-request baseline."""
    from repro.serve.loadgen import (
        LoadSpec,
        bench_report_json,
        run_serve_benchmark,
    )
    from repro.serve.server import ServerConfig
    from repro.xpr.store import write_bench

    spec = LoadSpec(
        n=args.n,
        k=args.k,
        num_requests=args.requests,
        num_kernels=args.kernels,
        sigma=args.sigma,
        policy=args.policy,
        seed=args.seed,
    )
    config = ServerConfig(
        n=args.n,
        k=args.k,
        max_batch_size=args.max_batch_size,
        max_wait_s=args.max_wait,
        mode="parallel" if args.mode == "parallel" else "serial",
        max_workers=args.workers,
    )
    pool = None
    own_pool = False
    if args.pool:
        from repro.pool.pool import RankPool

        if args.pool == "auto":
            import tempfile

            rendezvous = f"file://{tempfile.mkdtemp(prefix='serve-bench-pool-')}"
            pool = RankPool(rendezvous)
            pool.spawn(args.pool_ranks)
            own_pool = True
        else:
            pool = RankPool(args.pool)
        pool.connect(args.pool_ranks)
    try:
        report = run_serve_benchmark(spec, config, pool=pool)
    finally:
        if pool is not None:
            pool.down() if own_pool else pool.disconnect()
    payload = bench_report_json(spec, report, config)
    out = write_bench(payload, args.output)
    rows = [
        ["requests (kernels)", f"{spec.num_requests} ({spec.num_kernels})"],
        ["n / k / policy", f"{spec.n} / {spec.k} / {spec.policy}"],
        ["naive (s)", f"{report.naive_s:.3f}"],
        ["batched (s)", f"{report.batched_s:.3f}"],
        ["speedup", f"{report.speedup:.2f}x"],
        ["batches executed", report.batches],
        ["mean batch size", f"{report.batch_size_mean:.1f}"],
        ["bitwise identical", report.bitwise_identical],
    ]
    pool_row = report.extras.get("pool_backed")
    if pool_row:
        rows += [
            ["pool-backed (s)", f"{pool_row['elapsed_s']:.3f}"],
            ["pool-backed ranks", pool_row["ranks"]],
            ["pool-backed bitwise", pool_row["bitwise_identical"]],
            ["pool-backed plan misses", pool_row["plan_misses"]],
        ]
    rows.append(["report", str(out)])
    print(
        format_table(
            ["quantity", "value"],
            rows,
            title="serve-bench: batched serving vs naive executor",
        )
    )


def _serve(args: argparse.Namespace) -> int:
    """Serve a deterministic stream, locally or on a standing rank pool.

    With ``--backend pool://<rendezvous>`` every batch runs as jobs on
    the already-up pool (``repro pool up`` owns agent lifecycle); an
    optional ``--kill-job`` injects a rank death at that job to prove
    transparent failover.  Results are audited bitwise against the
    in-process batched server; exits 1 on any failed request or mismatch.
    """
    import dataclasses

    import numpy as np

    from repro.serve.dist_backend import PoolBackend
    from repro.serve.loadgen import LoadSpec, parse_policy, run_batched_server
    from repro.serve.request import DEFAULT_TENANT
    from repro.serve.server import ConvolutionServer, ServerConfig

    spec = LoadSpec(
        n=args.n,
        k=args.k,
        num_requests=args.requests,
        num_kernels=args.kernels,
        sigma=args.sigma,
        policy=args.policy,
        seed=args.seed,
    )
    policy = parse_policy(args.policy)

    def server_config() -> ServerConfig:
        return ServerConfig(
            n=args.n,
            k=args.k,
            max_batch_size=args.max_batch_size,
            max_wait_s=args.max_wait,
            default_policy=policy,
        )

    # In-process reference pass: the bitwise audit target.
    _, local_results, _ = run_batched_server(spec, policy, server_config())
    if args.backend == "local":
        print("backend 'local' is the reference path itself; nothing to audit")
        return 0
    if not args.backend.startswith("pool://"):
        raise ReproError(
            f"--backend must be 'local' or 'pool://<rendezvous-url>', "
            f"got {args.backend!r}"
        )
    rendezvous = args.backend[len("pool://") :]

    job_hook = None
    if args.kill_job is not None:

        def job_hook(job_index, config):
            if job_index != args.kill_job:
                return config
            return dataclasses.replace(
                config, fail_rank=args.kill_rank, fail_stage=args.kill_stage
            )

    from repro.pool.pool import RankPool

    pool = RankPool(rendezvous)
    pool.connect(args.ranks)
    try:
        backend = PoolBackend({"pool0": pool}, job_hook=job_hook)
        server = ConvolutionServer(server_config(), executor=backend)
        for name, spectrum in spec.kernels().items():
            server.register_kernel(name, spectrum)
        handles = [
            server.submit(
                item["field"],
                kernel=item["kernel"],
                tenant=item.get("tenant", DEFAULT_TENANT),
            )
            for item in spec.requests()
        ]
        server.drain()
        failed = [h for h in handles if h.exception() is not None]
        results = {
            i: h.result(timeout=0).approx
            for i, h in enumerate(handles)
            if h.exception() is None
        }
        bitwise = all(
            np.array_equal(results[i], local_results[i]) for i in results
        )
        snap = server.snapshot()
        server.shutdown()
    finally:
        pool.disconnect()
    counters = snap["counters"]
    last = snap.get("backend", {}).get("last_job", {})
    tenants = snap.get("backend", {}).get("tenants", {})
    print(
        format_table(
            ["quantity", "value"],
            [
                ["backend / ranks", f"pool://{rendezvous} / {args.ranks}"],
                ["requests completed", counters.get("requests_completed", 0)],
                ["requests failed", len(failed)],
                ["bitwise identical to local serve", bitwise],
                ["injected kill", args.kill_job if args.kill_job is not None
                 else "none"],
                ["pool recoveries", counters.get("pool.recoveries", 0)],
                ["ranks replaced", counters.get("pool.replacements", 0)],
                ["generation bumps", counters.get("pool.generation_bumps", 0)],
                ["last job generation", last.get("generation", "-")],
                ["last job plan misses", last.get("plan_misses", "-")],
                [
                    "tenant wire bytes",
                    {t: d["sent_bytes"] for t, d in tenants.items()} or "-",
                ],
            ],
            title="serve: dist-backed serving audit",
        )
    )
    return 1 if (failed or not bitwise) else 0


COMMANDS: Dict[str, Callable[[], None]] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig1": _fig1,
    "fig3": _fig3,
    "eq6": _eq6,
    "batch": _batch,
    "massif": _massif,
    "commshift": _commshift,
    "report": _report,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["xpr"]:
        # The xpr verb owns its own sub-command surface (run/report/gate/
        # seed); hand it the rest of the argv before the experiment
        # parser can reject its flags.
        from repro.xpr.cli import xpr_main

        return xpr_main(argv[1:])
    if argv[:1] == ["pool"]:
        # Same pattern for the standing rank pool (up/status/submit/down/
        # agent/coordinator).
        from repro.pool.cli import pool_main

        return pool_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from the low-communication "
        "3D convolution paper (ICPP Workshops '22).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS)
        + ["all", "pipeline", "serve", "serve-bench", "dist-run", "lint",
           "xpr", "pool"],
        help="which experiment to run ('pipeline' runs the end-to-end "
        "convolution itself; 'serve' audits dist-backed serving on a "
        "standing pool; 'serve-bench' benchmarks the batching "
        "service; 'dist-run' executes the pipeline as a real multi-process "
        "SPMD job; 'lint' runs the project-specific static analysis; "
        "'xpr' orchestrates experiment grids and regression gates — "
        "see 'repro xpr --help'; 'pool' operates the standing rank pool — "
        "see 'repro pool --help'; see the flag groups below)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (lint only; default: src)",
    )
    group = parser.add_argument_group("pipeline options")
    group.add_argument("--n", type=int, default=64, help="global grid edge")
    group.add_argument("--k", type=int, default=16, help="sub-domain edge")
    group.add_argument("--sigma", type=float, default=2.0, help="kernel width")
    group.add_argument("--seed", type=int, default=0, help="input field seed")
    group.add_argument(
        "--mode",
        choices=["serial", "parallel"],
        default="serial",
        help="execution mode (parallel = process-pool fan-out)",
    )
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for --mode parallel (default: all cores)",
    )
    group.add_argument(
        "--real-kernel",
        dest="real_kernel",
        action="store_true",
        default=None,
        help="assert a real kernel spectrum (Hermitian fast path); "
        "auto-detected when omitted",
    )
    group.add_argument(
        "--complex-kernel",
        dest="real_kernel",
        action="store_false",
        help="force the full complex path",
    )
    dist = parser.add_argument_group("dist-run options")
    dist.add_argument(
        "--ranks", type=int, default=2, help="number of SPMD ranks"
    )
    dist.add_argument(
        "--transport",
        choices=["local", "tcp"],
        default="tcp",
        help="rank transport: 'tcp' = one OS process per rank over "
        "localhost sockets, 'local' = in-process loopback threads",
    )
    dist.add_argument(
        "--overlap",
        action="store_true",
        help="stream each finished chunk into the exchange while the "
        "next chunk computes (overlap mode) instead of the "
        "compute-then-exchange barrier",
    )
    dist.add_argument(
        "--window",
        type=int,
        default=2,
        help="bounded in-flight chunk window for --overlap "
        "(2 = double buffered)",
    )
    serve = parser.add_argument_group("serve-bench options")
    serve.add_argument(
        "--requests", type=int, default=16, help="number of requests in the stream"
    )
    serve.add_argument(
        "--kernels",
        type=int,
        default=1,
        help="distinct kernels across the stream (compatibility groups)",
    )
    serve.add_argument(
        "--policy",
        default="banded",
        help="sampling policy spec: 'banded' or 'flat:R'",
    )
    serve.add_argument(
        "--max-batch-size", type=int, default=8, help="dynamic batching size cap"
    )
    serve.add_argument(
        "--max-wait",
        type=float,
        default=0.05,
        help="max seconds a partial batch waits before flushing",
    )
    serve.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="where to write the benchmark report JSON",
    )
    serve.add_argument(
        "--pool",
        default=None,
        help="serve-bench: also A/B the pool-backed path — 'auto' spawns "
        "a private pool of --pool-ranks agents, or pass a rendezvous URL "
        "to connect to an already-up pool",
    )
    serve.add_argument(
        "--pool-ranks",
        type=int,
        default=2,
        help="rank count for --pool (must match the standing pool's size)",
    )
    serve.add_argument(
        "--backend",
        default="local",
        help="serve: 'local' or 'pool://<rendezvous-url>' (an already-up "
        "pool; --ranks many agents)",
    )
    serve.add_argument(
        "--kill-job",
        type=int,
        default=None,
        help="serve: inject a rank death at this 1-based pool job index "
        "(proves transparent failover)",
    )
    serve.add_argument(
        "--kill-rank",
        type=int,
        default=1,
        help="which rank --kill-job kills",
    )
    serve.add_argument(
        "--kill-stage",
        default="before_checkpoint",
        help="pipeline stage --kill-job kills at (see dist FAIL_STAGES)",
    )
    lint = parser.add_argument_group("lint options")
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="lint output format (json is the stable CI-artifact schema)",
    )
    lint.add_argument(
        "--timing",
        action="store_true",
        help="append a per-rule wall-time column to the text report "
        "(JSON output always carries timings)",
    )
    args = parser.parse_args(argv)
    if args.paths and args.experiment != "lint":
        parser.error("positional paths are only valid with 'lint'")
    try:
        if args.experiment == "lint":
            return _lint(args)
        if args.experiment == "pipeline":
            _pipeline(args)
        elif args.experiment == "serve":
            return _serve(args)
        elif args.experiment == "serve-bench":
            _serve_bench(args)
        elif args.experiment == "dist-run":
            _dist_run(args)
        elif args.experiment == "all":
            for name in sorted(COMMANDS):
                print(f"\n================ {name} ================")
                COMMANDS[name]()
        else:
            COMMANDS[args.experiment]()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
