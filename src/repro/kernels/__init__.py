"""Convolution kernels with Green's-function-like properties.

The paper's method applies to kernels that (1) decay rapidly in space and
(2) have real-valued spectra — the signature of Green's functions of
self-adjoint operators.  This package provides:

- :mod:`repro.kernels.gaussian` — the sharp centered Gaussian the paper's
  proof-of-concept uses in place of a material-specific Green's function.
- :mod:`repro.kernels.poisson` — the Poisson Green's function
  ``1 / (4 pi |x|)`` (paper Eq 5).
- :mod:`repro.kernels.green_massif` — the MASSIF Green's operator
  ``Gamma_hat`` in closed Fourier form (paper Eq 3), applied on the fly.
- :mod:`repro.kernels.properties` — kernel property analyzers (real
  spectrum, symmetry, decay fit, effective support) that justify the
  compression policy.
- :mod:`repro.kernels.freq` — frequency-grid helpers.
"""

from repro.kernels.freq import frequency_grid, frequency_norm2
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.green_massif import (
    LameParameters,
    apply_gamma_hat,
    gamma_hat_tensor,
)
from repro.kernels.poisson import PoissonKernel
from repro.kernels.yukawa import YukawaKernel
from repro.kernels.properties import (
    decay_profile,
    effective_support_radius,
    fit_power_law_decay,
    is_centrosymmetric,
    spectrum_is_real,
)

__all__ = [
    "frequency_grid",
    "frequency_norm2",
    "GaussianKernel",
    "PoissonKernel",
    "YukawaKernel",
    "LameParameters",
    "gamma_hat_tensor",
    "apply_gamma_hat",
    "decay_profile",
    "effective_support_radius",
    "fit_power_law_decay",
    "is_centrosymmetric",
    "spectrum_is_real",
]
