"""Poisson Green's function ``G(x) = 1 / (4 pi |x|)`` (paper Eq 5).

The paper cites Poisson's equation as the canonical relative of MASSIF:
"the Green's function is ``1/(4 pi |x - x0|)`` which also has properties
in common with MASSIF i.e. decay proportional to 1/x".  The spectral form
on a periodic grid is ``G_hat(xi) = 1 / |xi|^2`` (with the zero mode
projected out), so a Poisson solve is one FFT convolution — a second
realistic use case for the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.freq import frequency_norm2
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class PoissonKernel:
    """Spectral inverse Laplacian on an ``n^3`` periodic grid.

    ``length`` sets the physical box size; frequencies are
    ``2 pi m / length`` so results converge to the continuum solution as
    the grid refines.
    """

    n: int
    length: float = 1.0

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        if self.length <= 0:
            raise ConfigurationError(f"length must be positive, got {self.length}")

    def spectrum(self) -> np.ndarray:
        """``1/|xi|^2`` with the zero mode set to 0 (mean removed).

        Real-valued and decaying — the properties the compression policy
        relies on.
        """
        scale = (2.0 * np.pi / self.length) ** 2
        norm2 = frequency_norm2(self.n) * scale
        with np.errstate(divide="ignore"):
            inv = np.where(norm2 > 0, 1.0 / norm2, 0.0)
        return inv

    def spatial(self) -> np.ndarray:
        """The periodic Green's function sampled on the grid (via inverse
        DFT of the spectrum; matches ``1/(4 pi r)`` away from images)."""
        return np.real(np.fft.ifftn(self.spectrum()))

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``-laplace(u) = rhs`` with periodic BCs, zero-mean ``u``."""
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape != (self.n,) * 3:
            raise ConfigurationError(
                f"rhs shape {rhs.shape} != grid ({self.n},)*3"
            )
        u_hat = np.fft.fftn(rhs) * self.spectrum()
        return np.real(np.fft.ifftn(u_hat))
