"""Frequency-grid helpers shared by all spectral kernels."""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.util.validation import check_positive_int


@lru_cache(maxsize=32)
def frequency_grid(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Integer DFT frequency components ``(xi_x, xi_y, xi_z)`` on an n^3 grid.

    Sparse (broadcastable) arrays of shapes ``(n,1,1)``, ``(1,n,1)``,
    ``(1,1,n)`` holding :func:`numpy.fft.fftfreq` scaled by ``n`` (i.e.
    integer frequencies ``0, 1, ..., -1``).  The MASSIF Green's operator
    (Eq 3) is homogeneous of degree zero in ``xi``, so any uniform scaling
    convention gives identical results; integer frequencies keep everything
    exact.
    """
    n = check_positive_int(n, "n")
    f = np.fft.fftfreq(n, d=1.0 / n)  # 0, 1, ..., -n/2, ..., -1
    xi_x = f.reshape(n, 1, 1)
    xi_y = f.reshape(1, n, 1)
    xi_z = f.reshape(1, 1, n)
    for a in (xi_x, xi_y, xi_z):
        a.setflags(write=False)
    return xi_x, xi_y, xi_z


def frequency_norm2(n: int) -> np.ndarray:
    """``|xi|^2`` on the n^3 grid (dense array)."""
    xi_x, xi_y, xi_z = frequency_grid(n)
    return xi_x**2 + xi_y**2 + xi_z**2
