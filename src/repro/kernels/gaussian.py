"""The paper's proof-of-concept kernel: a sharp centered Gaussian.

"The exact values of the Green's function depend on the stiffness tensor
for the material in question, but generally ... it has the same decaying
behavior.  A sharp Gaussian function fits the requirement.  The center of
the Gaussian should be at (N/2+1, N/2+1, N/2+1) [1-based] ... This makes
sure that the Fourier transform of the Gaussian is real-valued."  (§4)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.util.arrays import centered_gaussian
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class GaussianKernel:
    """Sharp Gaussian convolution kernel on an ``n^3`` periodic grid.

    Parameters
    ----------
    n:
        Grid edge length.
    sigma:
        Standard deviation in grid units; "sharp" means ``sigma << n`` so
        the kernel decays within a few sub-domain widths.
    """

    n: int
    sigma: float

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {self.sigma}")

    def spatial(self) -> np.ndarray:
        """The kernel in space, centered at ``n//2`` per axis (0-based) —
        the paper's ``(N/2+1)`` in 1-based Fortran indexing."""
        return centered_gaussian(self.n, self.sigma)

    def spectrum(self) -> np.ndarray:
        """The kernel's DFT, taken about the origin.

        The centered kernel is circularly shifted to the origin
        (``ifftshift``) before the transform.  Two reasons: (1) the shifted
        kernel is centrosymmetric about index 0, so the DFT is real-valued
        — the paper's requirement; (2) convolution then leaves the result
        *co-located* with the sub-domain, which is what the octree pattern
        of Fig 3 (dense around the sub-domain) assumes.  Transforming the
        centered kernel directly would also give a real spectrum but would
        translate every convolution output by N/2 per axis, putting the
        energy where the adaptive pattern is sparsest.
        """
        return np.real(np.fft.fftn(np.fft.ifftshift(self.spatial())))

    def convolve_dense(self, field: np.ndarray) -> np.ndarray:
        """Exact circular convolution with a dense ``n^3`` field."""
        field = np.asarray(field)
        if field.shape != (self.n,) * 3:
            raise ConfigurationError(
                f"field shape {field.shape} != kernel grid ({self.n},)*3"
            )
        out = np.fft.ifftn(np.fft.fftn(field) * self.spectrum())
        return np.real(out)

    def decay_length(self) -> float:
        """e-folding radius of the kernel (``sigma * sqrt(2)``); the
        compression policy's notion of "spread"."""
        return float(self.sigma * np.sqrt(2.0))
