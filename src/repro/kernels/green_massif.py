"""The MASSIF Green's operator ``Gamma_hat`` in closed Fourier form (Eq 3).

For an isotropic reference medium with Lame coefficients ``lambda0, mu0``
(Moulinec & Suquet 1998, the paper's [21]):

    Gamma_hat_ijkl(xi) =
        (delta_ki xi_l xi_j + delta_li xi_k xi_j +
         delta_kj xi_l xi_i + delta_lj xi_k xi_i) / (4 mu0 |xi|^2)
      - ((lambda0 + mu0) / (mu0 (lambda0 + 2 mu0)))
         * xi_i xi_j xi_k xi_l / |xi|^4

``Gamma_hat`` is homogeneous of degree 0 in ``xi`` (depends on direction
only) and real-valued — the property the paper's compression exploits.
The closed form means it is "computed on-the-fly during convolution,
further reducing memory requirement" (§2.2): :func:`apply_gamma_hat`
contracts it against a stress field without ever materializing the 81
component arrays.

Discretization note: on an even grid the Nyquist planes (``xi_i = -n/2``)
have no conjugate partner, while ``Gamma_hat`` is even only under negating
the *full* frequency vector — so a naive evaluation produces non-Hermitian
output there, and the subsequent ``real()`` silently perturbs the
operator (breaking the projector identity ``Gamma C0 Gamma = Gamma`` by
O(Nyquist content)).  Following standard Moulinec-Suquet practice, Gamma
is defined as zero on all Nyquist planes (like the mean mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.kernels.freq import frequency_grid, frequency_norm2
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class LameParameters:
    """Isotropic reference-medium Lame coefficients ``(lambda0, mu0)``."""

    lam: float
    mu: float

    def __post_init__(self) -> None:
        if self.mu <= 0:
            raise ConfigurationError(f"mu must be positive, got {self.mu}")
        if self.lam + 2 * self.mu <= 0:
            raise ConfigurationError(
                f"lambda + 2 mu must be positive, got {self.lam + 2 * self.mu}"
            )

    @classmethod
    def from_young_poisson(cls, young: float, poisson: float) -> "LameParameters":
        """Construct from Young's modulus E and Poisson ratio nu."""
        if young <= 0:
            raise ConfigurationError(f"Young's modulus must be positive, got {young}")
        if not -1.0 < poisson < 0.5:
            raise ConfigurationError(f"Poisson ratio must be in (-1, 0.5), got {poisson}")
        lam = young * poisson / ((1 + poisson) * (1 - 2 * poisson))
        mu = young / (2 * (1 + poisson))
        return cls(lam=lam, mu=mu)

    @property
    def coef2(self) -> float:
        """The second-term coefficient ``(lam + mu) / (mu (lam + 2 mu))``."""
        return (self.lam + self.mu) / (self.mu * (self.lam + 2 * self.mu))


def nyquist_mask(
    xi: Tuple[np.ndarray, np.ndarray, np.ndarray], n: int
) -> np.ndarray:
    """Boolean mask of modes on a Nyquist plane (any ``xi_i == -n/2``).

    Empty for odd ``n`` (no Nyquist frequency).  Broadcasts like the xi
    components it is built from.
    """
    if n % 2 != 0:
        return np.zeros(np.broadcast_shapes(*(np.shape(x) for x in xi)), dtype=bool)
    nyq = -(n // 2)
    return (xi[0] == nyq) | (xi[1] == nyq) | (xi[2] == nyq)


def gamma_hat_tensor(n: int, lame: LameParameters) -> np.ndarray:
    """Materialize ``Gamma_hat`` as a ``(3,3,3,3,n,n,n)`` real array.

    For validation and small grids only — 81 component fields.  Production
    code uses :func:`apply_gamma_hat`.  The zero frequency and the Nyquist
    planes are set to zero (the operator annihilates the mean; see the
    module docstring for the Nyquist convention).
    """
    check_positive_int(n, "n")
    xi = _xi_components(n)
    norm2 = frequency_norm2(n)
    keep = ~nyquist_mask(xi, n)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv2 = np.where((norm2 > 0) & keep, 1.0 / np.where(norm2 > 0, norm2, 1.0), 0.0)
    inv4 = inv2 * inv2
    out = np.zeros((3, 3, 3, 3, n, n, n), dtype=np.float64)
    for i in range(3):
        for j in range(3):
            for k in range(3):
                for l in range(3):
                    term1 = np.zeros((n, n, n))
                    if k == i:
                        term1 = term1 + xi[l] * xi[j]
                    if l == i:
                        term1 = term1 + xi[k] * xi[j]
                    if k == j:
                        term1 = term1 + xi[l] * xi[i]
                    if l == j:
                        term1 = term1 + xi[k] * xi[i]
                    out[i, j, k, l] = term1 * inv2 / (4.0 * lame.mu) - (
                        lame.coef2 * xi[i] * xi[j] * xi[k] * xi[l] * inv4
                    )
    return out


def apply_gamma_generic(
    tau_hat: np.ndarray,
    xi: Tuple[np.ndarray, np.ndarray, np.ndarray],
    lame: LameParameters,
    n: Optional[int] = None,
) -> np.ndarray:
    """Contract ``Gamma_hat(xi) : tau_hat`` for arbitrary frequency layouts.

    ``tau_hat`` has shape ``(3, 3, *S)`` and each ``xi`` component
    broadcasts against ``S`` — this is what lets the pencil-batched
    low-communication solver evaluate Gamma per z-pencil batch (xi_x, xi_y
    scalars per pencil, xi_z a full axis) without materializing anything.
    The xi == 0 mode maps to zero (guarded division); when the grid size
    ``n`` is supplied, Nyquist planes are zeroed too (module docstring).
    """
    tau_hat = np.asarray(tau_hat)
    if tau_hat.ndim < 3 or tau_hat.shape[:2] != (3, 3):
        raise ShapeError(
            f"tau_hat must have shape (3, 3, ...), got {tau_hat.shape}"
        )
    norm2 = xi[0] ** 2 + xi[1] ** 2 + xi[2] ** 2
    keep = norm2 > 0
    if n is not None:
        keep = keep & ~nyquist_mask(xi, n)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv2 = np.where(keep, 1.0 / np.where(norm2 > 0, norm2, 1.0), 0.0)

    a = [sum(tau_hat[i, l] * xi[l] for l in range(3)) for i in range(3)]
    b = [sum(xi[k] * tau_hat[k, i] for k in range(3)) for i in range(3)]
    ab = [a[i] + b[i] for i in range(3)]
    quad = sum(xi[k] * a[k] for k in range(3))

    out = np.empty(
        (3, 3) + np.broadcast_shapes(tau_hat.shape[2:], norm2.shape),
        dtype=np.result_type(tau_hat.dtype, np.float64),
    )
    for i in range(3):
        for j in range(3):
            term1 = (xi[j] * ab[i] + xi[i] * ab[j]) * (inv2 / (4.0 * lame.mu))
            term2 = lame.coef2 * xi[i] * xi[j] * quad * (inv2 * inv2)
            out[i, j] = term1 - term2
    return out


def apply_gamma_hat(
    tau_hat: np.ndarray, lame: LameParameters, zero_mean: bool = True
) -> np.ndarray:
    """Contract ``Gamma_hat_ijkl(xi) tau_hat_kl(xi)`` on the fly.

    Parameters
    ----------
    tau_hat:
        Fourier-space rank-2 tensor field, shape ``(3, 3, n, n, n)``
        (complex).
    lame:
        Reference-medium coefficients.
    zero_mean:
        Zero the xi=0 mode of the result (default; matches the scheme).

    Implementation: with ``a_i = tau_il xi_l`` and ``b_i = xi_k tau_ki``,

        (Gamma : tau)_ij = (xi_j (a_i + b_i) + xi_i (a_j + b_j))
                            / (4 mu |xi|^2)
                         - coef2 * xi_i xi_j (xi . tau . xi) / |xi|^4

    which is 9 + 3 field multiplies instead of 81, and never forms the
    rank-4 tensor — the "on-the-fly" evaluation the paper highlights.
    """
    tau_hat = np.asarray(tau_hat)
    if tau_hat.ndim != 5 or tau_hat.shape[:2] != (3, 3):
        raise ShapeError(
            f"tau_hat must have shape (3, 3, n, n, n), got {tau_hat.shape}"
        )
    n = tau_hat.shape[2]
    if tau_hat.shape[2:] != (n, n, n):
        raise ShapeError(f"tau_hat field part must be a cube, got {tau_hat.shape[2:]}")

    xi = _xi_components(n)
    norm2 = frequency_norm2(n)
    keep = (norm2 > 0) & ~nyquist_mask(xi, n)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv2 = np.where(keep, 1.0 / np.where(norm2 > 0, norm2, 1.0), 0.0)

    # a_i = tau_il xi_l ; b_i = xi_k tau_ki
    a = [sum(tau_hat[i, l] * xi[l] for l in range(3)) for i in range(3)]
    b = [sum(xi[k] * tau_hat[k, i] for k in range(3)) for i in range(3)]
    ab = [a[i] + b[i] for i in range(3)]
    # xi . tau . xi
    quad = sum(xi[k] * a[k] for k in range(3))

    out = np.empty_like(tau_hat)
    for i in range(3):
        for j in range(3):
            term1 = (xi[j] * ab[i] + xi[i] * ab[j]) * (inv2 / (4.0 * lame.mu))
            term2 = lame.coef2 * xi[i] * xi[j] * quad * (inv2 * inv2)
            out[i, j] = term1 - term2
    if zero_mean:
        out[:, :, 0, 0, 0] = 0.0
    return out


def _xi_components(n: int):
    """Dense-broadcastable frequency components indexed 0..2."""
    xi_x, xi_y, xi_z = frequency_grid(n)
    return (xi_x, xi_y, xi_z)
