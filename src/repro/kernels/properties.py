"""Kernel property analyzers.

The method's applicability test (paper §3.1): the kernel must decay
rapidly (so the convolution tail compresses) and have a real spectrum
(symmetry).  These analyzers quantify both so the sampling policy can be
derived from the kernel instead of hand-picked — "the user parameterizes
the sampling strategy ... with the spread, decay rate of the Green's
function and the size of the sub-domain" (§4).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_cube


def spectrum_is_real(kernel_spatial: np.ndarray, tol: float = 1e-9) -> bool:
    """Whether the kernel's DFT is real to tolerance (relative to its peak)."""
    kernel = check_cube(np.asarray(kernel_spatial, dtype=np.float64), "kernel")
    spec = np.fft.fftn(kernel)
    peak = float(np.max(np.abs(spec)))
    if peak == 0.0:
        return True
    return float(np.max(np.abs(spec.imag))) <= tol * peak


def spectrum_is_hermitian_real(spectrum: np.ndarray, tol: float = 1e-9) -> bool:
    """Whether a dense ``n^3`` *spectrum* supports the Hermitian fast path.

    The half-spectrum pipeline is exact when convolution with the kernel
    maps real fields to real fields, i.e. when the spectrum is Hermitian:
    ``K[-f] = conj(K[f])``.  For the real-valued spectra the paper targets
    that reduces to index centrosymmetry, which is what is checked here
    (alongside the imaginary part being negligible).  This is the
    spectrum-side counterpart of :func:`spectrum_is_real`, for callers who
    hold the spectrum rather than the spatial kernel.
    """
    spec = check_cube(np.asarray(spectrum), "spectrum")
    peak = float(np.max(np.abs(spec)))
    if peak == 0.0:
        return True
    if np.iscomplexobj(spec) and float(np.max(np.abs(spec.imag))) > tol * peak:
        return False
    real = np.ascontiguousarray(spec.real, dtype=np.float64)
    reflected = np.roll(real[::-1, ::-1, ::-1], 1, axis=(0, 1, 2))
    return float(np.max(np.abs(real - reflected))) <= tol * peak


def is_centrosymmetric(kernel_spatial: np.ndarray, tol: float = 1e-9) -> bool:
    """Whether ``g[x] == g[-x mod n]`` (the symmetry behind a real DFT)."""
    kernel = check_cube(np.asarray(kernel_spatial, dtype=np.float64), "kernel")
    reflected = kernel[::-1, ::-1, ::-1]
    reflected = np.roll(reflected, 1, axis=(0, 1, 2))
    peak = float(np.max(np.abs(kernel)))
    if peak == 0.0:
        return True
    return float(np.max(np.abs(kernel - reflected))) <= tol * peak


def decay_profile(
    kernel_spatial: np.ndarray, center: Tuple[int, int, int] | None = None, bins: int = 32
) -> Tuple[np.ndarray, np.ndarray]:
    """Radially averaged magnitude profile ``(radii, mean |g|)``.

    The raw material for decay fits; ``center`` defaults to the magnitude
    peak.
    """
    kernel = check_cube(np.asarray(kernel_spatial, dtype=np.float64), "kernel")
    n = kernel.shape[0]
    if center is None:
        center = np.unravel_index(int(np.argmax(np.abs(kernel))), kernel.shape)
    cx, cy, cz = (int(c) for c in center)
    idx = np.arange(n)
    # Periodic (minimum-image) distance per axis.
    dx = np.minimum(np.abs(idx - cx), n - np.abs(idx - cx)).reshape(n, 1, 1)
    dy = np.minimum(np.abs(idx - cy), n - np.abs(idx - cy)).reshape(1, n, 1)
    dz = np.minimum(np.abs(idx - cz), n - np.abs(idx - cz)).reshape(1, 1, n)
    radius = np.sqrt(dx**2.0 + dy**2.0 + dz**2.0)
    rmax = float(radius.max())
    edges = np.linspace(0.0, rmax, bins + 1)
    which = np.digitize(radius.ravel(), edges) - 1
    which = np.clip(which, 0, bins - 1)
    mag = np.abs(kernel).ravel()
    sums = np.bincount(which, weights=mag, minlength=bins)
    counts = np.bincount(which, minlength=bins)
    means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, means


def fit_power_law_decay(
    kernel_spatial: np.ndarray, r_min: float = 1.0
) -> float:
    """Fit ``|g(r)| ~ r^(-p)`` and return the exponent ``p``.

    Green's functions of second-order elliptic operators in 3D decay like
    ``1/r`` (Poisson) to ``1/r^3`` (elasticity Gamma); a large fitted ``p``
    certifies rapid decay.  Fit is least-squares in log-log space over
    bins with ``r >= r_min`` and positive mean magnitude.
    """
    radii, means = decay_profile(kernel_spatial)
    mask = (radii >= r_min) & (means > 0)
    if int(mask.sum()) < 2:
        raise ConfigurationError("not enough bins with signal to fit a decay law")
    x = np.log(radii[mask])
    y = np.log(means[mask])
    slope, _intercept = np.polyfit(x, y, 1)
    return float(-slope)


def effective_support_radius(
    kernel_spatial: np.ndarray, energy_fraction: float = 0.99
) -> float:
    """Smallest radius containing ``energy_fraction`` of the kernel energy.

    Feeds the sampling policy: rates may increase aggressively beyond this
    radius because the convolution tail carries almost no energy there.
    """
    if not 0.0 < energy_fraction <= 1.0:
        raise ConfigurationError(
            f"energy_fraction must be in (0, 1], got {energy_fraction}"
        )
    kernel = check_cube(np.asarray(kernel_spatial, dtype=np.float64), "kernel")
    n = kernel.shape[0]
    center = np.unravel_index(int(np.argmax(np.abs(kernel))), kernel.shape)
    idx = np.arange(n)
    dx = np.minimum(np.abs(idx - center[0]), n - np.abs(idx - center[0])).reshape(n, 1, 1)
    dy = np.minimum(np.abs(idx - center[1]), n - np.abs(idx - center[1])).reshape(1, n, 1)
    dz = np.minimum(np.abs(idx - center[2]), n - np.abs(idx - center[2])).reshape(1, 1, n)
    radius = np.sqrt(dx**2.0 + dy**2.0 + dz**2.0).ravel()
    energy = (kernel.ravel() ** 2).astype(np.float64)
    order = np.argsort(radius)
    cumulative = np.cumsum(energy[order])
    total = cumulative[-1]
    if total == 0.0:
        return 0.0
    cut = np.searchsorted(cumulative, energy_fraction * total)
    cut = min(cut, len(order) - 1)
    return float(radius[order][cut])
