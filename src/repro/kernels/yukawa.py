"""Screened-Poisson (Yukawa) Green's function.

``(-laplace + kappa^2) u = f`` has Green's function
``exp(-kappa r) / (4 pi r)`` — the paper's remarks about heat flow and
particle-scattering solvers are about exactly this family.  The screening
makes the kernel decay *faster* than Poisson's (exponentially), so it is a
strictly easier target for the compression policy; the spectrum
``1 / (|xi|^2 + kappa^2)`` is real, positive, and has no zero-mode
singularity, making it the clean stress-test kernel for the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.freq import frequency_norm2
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class YukawaKernel:
    """Spectral screened inverse Laplacian on an ``n^3`` periodic grid.

    Parameters
    ----------
    n:
        Grid edge.
    kappa:
        Screening wavenumber (physical units of ``2 pi / length``); larger
        kappa means faster spatial decay ``exp(-kappa r)``.
    length:
        Physical box size.
    """

    n: int
    kappa: float
    length: float = 1.0

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        if self.kappa <= 0:
            raise ConfigurationError(f"kappa must be positive, got {self.kappa}")
        if self.length <= 0:
            raise ConfigurationError(f"length must be positive, got {self.length}")

    def spectrum(self) -> np.ndarray:
        """``1 / (|xi|^2 + kappa^2)`` — real, positive, bounded."""
        scale = (2.0 * np.pi / self.length) ** 2
        return 1.0 / (frequency_norm2(self.n) * scale + self.kappa**2)

    def spatial(self) -> np.ndarray:
        """The periodic screened Green's function on the grid."""
        return np.real(np.fft.ifftn(self.spectrum()))

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(-laplace + kappa^2) u = rhs`` with periodic BCs."""
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape != (self.n,) * 3:
            raise ConfigurationError(
                f"rhs shape {rhs.shape} != grid ({self.n},)*3"
            )
        return np.real(np.fft.ifftn(np.fft.fftn(rhs) * self.spectrum()))

    def decay_length(self) -> float:
        """e-folding distance of the kernel tail, in physical units."""
        return 1.0 / self.kappa
