"""Tests for the simulated communicator and SPMD shim."""

import numpy as np
import pytest

from repro.cluster.comm import SimulatedComm, TrafficLedger
from repro.cluster.mpi_shim import RankSet, spmd_phase
from repro.cluster.network import Link, Network
from repro.errors import CommunicationError, RankFailure
from repro.util.timing import SimClock


class TestTrafficLedger:
    def test_records_rounds_and_bytes(self):
        ledger = TrafficLedger()
        ledger.record("alltoall", 100)
        ledger.record("alltoall", 50)
        ledger.record("bcast", 10)
        assert ledger.rounds_by_type["alltoall"] == 2
        assert ledger.bytes_by_type["alltoall"] == 150
        assert ledger.total_rounds == 3
        assert ledger.total_bytes == 160
        assert ledger.alltoall_rounds == 2


class TestAlltoall:
    def test_transpose_semantics(self, rng):
        comm = SimulatedComm(3)
        send = [[np.array([i * 10 + j]) for j in range(3)] for i in range(3)]
        recv = comm.alltoall(send)
        for j in range(3):
            for i in range(3):
                assert recv[j][i][0] == i * 10 + j

    def test_counts_one_round(self):
        comm = SimulatedComm(2)
        send = [[np.zeros(4)] * 2 for _ in range(2)]
        comm.alltoall(send)
        assert comm.ledger.alltoall_rounds == 1

    def test_offdiagonal_bytes_only(self):
        comm = SimulatedComm(2)
        send = [[np.zeros(4)] * 2 for _ in range(2)]
        comm.alltoall(send)
        # 2 off-diagonal messages of 32 bytes each
        assert comm.ledger.total_bytes == 64

    def test_charges_clock(self):
        clock = SimClock()
        comm = SimulatedComm(4, clock=clock)
        comm.alltoall([[np.zeros(100)] * 4 for _ in range(4)])
        assert clock.category_total("comm") > 0

    def test_wrong_row_length_raises(self):
        comm = SimulatedComm(2)
        with pytest.raises(CommunicationError):
            comm.alltoall([[np.zeros(1)], [np.zeros(1), np.zeros(1)]])

    def test_wrong_participant_count_raises(self):
        comm = SimulatedComm(3)
        with pytest.raises(CommunicationError):
            comm.alltoall([[np.zeros(1)] * 3] * 2)


class TestOtherCollectives:
    def test_allgather(self):
        comm = SimulatedComm(3)
        out = comm.allgather([np.array([r]) for r in range(3)])
        for r in range(3):
            assert [int(a[0]) for a in out[r]] == [0, 1, 2]

    def test_gather_at_root(self):
        comm = SimulatedComm(3)
        out = comm.gather([np.array([r * r]) for r in range(3)], root=1)
        assert [int(a[0]) for a in out] == [0, 1, 4]

    def test_bcast_copies(self):
        comm = SimulatedComm(2)
        val = np.array([1.0, 2.0])
        out = comm.bcast(val)
        out[0][0] = 99
        assert val[0] == 1.0
        np.testing.assert_array_equal(out[1], [1.0, 2.0])

    def test_allreduce_sum(self):
        comm = SimulatedComm(4)
        out = comm.allreduce_sum([np.full(3, float(r)) for r in range(4)])
        for r in range(4):
            np.testing.assert_allclose(out[r], [6.0, 6.0, 6.0])

    def test_allreduce_shape_mismatch(self):
        comm = SimulatedComm(2)
        with pytest.raises(CommunicationError):
            comm.allreduce_sum([np.zeros(2), np.zeros(3)])

    def test_mismatched_network_raises(self):
        with pytest.raises(CommunicationError):
            SimulatedComm(4, network=Network(2, Link()))


class TestFailureInjection:
    def test_dead_rank_breaks_collectives(self):
        comm = SimulatedComm(2)
        comm.kill_rank(1)
        with pytest.raises(RankFailure):
            comm.allgather([np.zeros(1), np.zeros(1)])

    def test_revive(self):
        comm = SimulatedComm(2)
        comm.kill_rank(0)
        comm.revive_rank(0)
        comm.allgather([np.zeros(1), np.zeros(1)])  # no raise

    def test_kill_bad_rank(self):
        with pytest.raises(CommunicationError):
            SimulatedComm(2).kill_rank(5)


class TestSPMDShim:
    def test_phase_runs_all_ranks(self):
        ranks = RankSet(4)
        results = spmd_phase(ranks, lambda s: s.rank * 2)
        assert results == [0, 2, 4, 6]

    def test_rank_state_storage(self):
        ranks = RankSet(2)

        def init(state):
            state["x"] = state.rank + 10

        spmd_phase(ranks, init)
        got = spmd_phase(ranks, lambda s: s["x"])
        assert got == [10, 11]
        assert "x" in ranks.ranks[0]

    def test_failed_rank_raises(self):
        ranks = RankSet(3)
        ranks.fail_rank(1)
        with pytest.raises(RankFailure, match="rank 1"):
            spmd_phase(ranks, lambda s: None, name="compute")

    def test_zero_ranks_rejected(self):
        with pytest.raises(CommunicationError):
            RankSet(0)
