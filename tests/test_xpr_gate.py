"""Gate semantics: thresholds, baselines, directions, CLI exit codes.

The acceptance scenario lives here: inject a synthetic 2x slowdown into
a stored metric and prove ``python -m repro xpr gate`` exits non-zero
with a readable per-metric diff naming the regression.
"""

import pytest

from repro.serve.clock import ManualClock
from repro.xpr.cli import xpr_main
from repro.xpr.gate import (
    GateConfig,
    evaluate_gate,
    is_timing_metric,
    metric_direction,
)
from repro.xpr.store import TrajectoryStore, TrialRecord


def record(metrics, *, status="ok", trial_id="aaa111bbb222", error=None,
           experiment="exp"):
    return TrialRecord(
        experiment=experiment,
        trial_id=trial_id,
        git_rev="abc123",
        ts="2026-01-01T00:00:00+00:00",
        status=status,
        params={"mode": "serial", "n": 32, "k": 8},
        metrics=metrics,
        error=error,
    )


def store_with(tmp_path, *records):
    store = TrajectoryStore(tmp_path / "t.jsonl")
    store.extend(records)
    return store


class TestMetricClassification:
    def test_timing_metrics(self):
        assert is_timing_metric("median_s")
        assert is_timing_metric("results.naive.median_s")
        assert is_timing_metric("speedup")
        assert is_timing_metric("per_call_us")
        assert not is_timing_metric("exchange_wire_bytes")
        assert not is_timing_metric("wire_over_model")

    def test_direction(self):
        assert metric_direction("speedup")
        assert metric_direction("results.batched.throughput_rps")
        assert not metric_direction("median_s")
        assert not metric_direction("exchange_wire_bytes")


class TestThresholds:
    def test_structural_within_ten_percent_passes(self, tmp_path):
        store = store_with(
            tmp_path,
            record({"wire_bytes": 1000.0}),
            record({"wire_bytes": 1050.0}),
        )
        report = evaluate_gate(store)
        assert report.passed
        (diff,) = report.diffs
        assert diff.change == pytest.approx(0.05)

    def test_structural_beyond_ten_percent_fails(self, tmp_path):
        store = store_with(
            tmp_path,
            record({"wire_bytes": 1000.0}),
            record({"wire_bytes": 1200.0}),
        )
        report = evaluate_gate(store)
        assert not report.passed
        (diff,) = report.regressions
        assert diff.metric == "wire_bytes"
        assert diff.threshold == pytest.approx(0.10)

    def test_timing_metrics_get_the_wide_band(self, tmp_path):
        # +40% on a *_s metric is inside the 50% timing band...
        store = store_with(
            tmp_path,
            record({"median_s": 1.0}),
            record({"median_s": 1.4}),
        )
        assert evaluate_gate(store).passed
        # ...but the same +40% on a structural metric regresses.
        store2 = store_with(
            tmp_path / "b",
            record({"wire_bytes": 1.0}),
            record({"wire_bytes": 1.4}),
        )
        assert not evaluate_gate(store2).passed

    def test_per_metric_override_beats_both_defaults(self, tmp_path):
        store = store_with(
            tmp_path,
            record({"median_s": 1.0}),
            record({"median_s": 1.05}),
        )
        config = GateConfig(per_metric={"median_s": 0.01})
        report = evaluate_gate(store, config=config)
        assert not report.passed

    def test_higher_is_better_inverts_direction(self, tmp_path):
        # speedup dropping 2.0 -> 0.8 is a regression even though the
        # raw value went *down*.
        store = store_with(
            tmp_path,
            record({"speedup": 2.0}),
            record({"speedup": 0.8}),
        )
        report = evaluate_gate(store)
        (diff,) = report.regressions
        assert diff.higher_is_better
        assert diff.change == pytest.approx(0.6)
        # and a speedup *improvement* can never regress
        store2 = store_with(
            tmp_path / "b",
            record({"speedup": 1.0}),
            record({"speedup": 4.0}),
        )
        assert evaluate_gate(store2).passed


class TestBaseline:
    def test_baseline_is_median_of_prior_ok_runs(self, tmp_path):
        history = [1.0, 100.0, 1.2]  # one outlier must not poison it
        store = store_with(
            tmp_path,
            *[record({"wire_bytes": v}) for v in history],
            record({"wire_bytes": 1.25}),
        )
        (diff,) = evaluate_gate(store).diffs
        assert diff.baseline == pytest.approx(1.2)
        assert evaluate_gate(store).passed

    def test_history_window_is_bounded(self, tmp_path):
        # With history_n=2 only the two newest priors form the baseline.
        store = store_with(
            tmp_path,
            record({"wire_bytes": 1.0}),
            record({"wire_bytes": 10.0}),
            record({"wire_bytes": 10.0}),
            record({"wire_bytes": 10.5}),
        )
        config = GateConfig(history_n=2)
        (diff,) = evaluate_gate(store, config=config).diffs
        assert diff.baseline == pytest.approx(10.0)
        assert evaluate_gate(store, config=config).passed

    def test_failed_runs_are_excluded_from_the_baseline(self, tmp_path):
        store = store_with(
            tmp_path,
            record({"wire_bytes": 1.0}),
            record({}, status="error", error="boom"),
            record({"wire_bytes": 1.05}),
        )
        report = evaluate_gate(store)
        (diff,) = report.diffs
        assert diff.baseline == pytest.approx(1.0)
        assert report.passed

    def test_new_trial_passes_and_is_reported(self, tmp_path):
        store = store_with(tmp_path, record({"wire_bytes": 1.0}))
        report = evaluate_gate(store)
        assert report.passed
        assert report.diffs == []
        assert len(report.new_trials) == 1
        assert "new trial" in report.render()

    def test_latest_run_failed_fails_the_gate(self, tmp_path):
        store = store_with(
            tmp_path,
            record({"wire_bytes": 1.0}),
            record({}, status="timeout", error="exceeded 600s"),
        )
        report = evaluate_gate(store)
        assert not report.passed
        assert "FAILED" in report.render()
        assert "exceeded 600s" in report.render()

    def test_zero_baseline_edge_cases(self, tmp_path):
        store = store_with(
            tmp_path,
            record({"copied_bytes": 0.0}),
            record({"copied_bytes": 0.0}),
        )
        assert evaluate_gate(store).passed  # 0 -> 0 is no change
        store2 = store_with(
            tmp_path / "b",
            record({"copied_bytes": 0.0}),
            record({"copied_bytes": 64.0}),
        )
        report = evaluate_gate(store2)
        assert not report.passed  # 0 -> anything worse is infinite
        assert "+inf%" in report.render()

    def test_evaluation_time_reads_the_injected_clock(self, tmp_path):
        store = store_with(tmp_path, record({"wire_bytes": 1.0}))
        clock = ManualClock()
        report = evaluate_gate(store, clock=clock)
        assert report.evaluation_s == 0.0


class TestGateCLI:
    def test_synthetic_2x_slowdown_exits_nonzero(self, tmp_path, capsys):
        # THE acceptance scenario: a stored structural metric doubles;
        # the gate must exit non-zero and name the regression readably.
        path = tmp_path / "t.jsonl"
        store = TrajectoryStore(path)
        store.extend(
            [
                record({"exchange_wire_bytes": 90112.0,
                        "wire_over_model": 1.0088}),
                record({"exchange_wire_bytes": 180224.0,
                        "wire_over_model": 1.0088}),
            ]
        )
        exit_code = xpr_main(["gate", "--store", str(path)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "REGRESSION" in out
        assert "exchange_wire_bytes" in out
        assert "baseline 90112 -> current 180224" in out
        assert "+100.0%" in out
        assert "limit +10.0%" in out
        assert "gate: FAIL" in out
        # the untouched metric is reported ok on its own line
        assert "wire_over_model: baseline 1.0088 -> current 1.0088" in out

    def test_clean_store_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        TrajectoryStore(path).extend(
            [record({"wire_bytes": 1.0}), record({"wire_bytes": 1.0})]
        )
        assert xpr_main(["gate", "--store", str(path)]) == 0
        assert "gate: PASS" in capsys.readouterr().out

    def test_threshold_flags_reach_the_config(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        TrajectoryStore(path).extend(
            [record({"median_s": 1.0}), record({"median_s": 1.4})]
        )
        # default timing band (50%) passes; tightening it to 20% fails
        assert xpr_main(["gate", "--store", str(path)]) == 0
        assert (
            xpr_main(
                ["gate", "--store", str(path), "--timing-threshold", "0.2"]
            )
            == 1
        )

    def test_experiment_filter(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        TrajectoryStore(path).extend(
            [
                record({"wire_bytes": 1.0}),
                record({"wire_bytes": 5.0}),  # regression in "exp"
                record({"wire_bytes": 1.0}, experiment="clean"),
            ]
        )
        assert xpr_main(["gate", "--store", str(path),
                         "--experiment", "clean"]) == 0
        assert xpr_main(["gate", "--store", str(path),
                         "--experiment", "exp"]) == 1
