"""Tests for device models, cuFFT workspace model, and cost functions."""

import math

import pytest

from repro.cluster.cost import (
    alpha_beta_time,
    axis_samples_flat,
    comm_advantage,
    comm_time_ours,
    comm_time_traditional_fft,
    dense_conv_flops,
    dense_conv_time,
    fft_stage_flops,
    pruned_conv_time,
    sparse_sample_count,
    speedup_ours_vs_dense,
    PrunedConvWork,
)
from repro.cluster.cufft_model import CufftWorkspaceModel
from repro.cluster.device import (
    DEVICE_CATALOG,
    V100_16GB,
    V100_32GB,
    XEON_GOLD_6148,
    get_device,
)
from repro.cluster.network import Link
from repro.errors import ConfigurationError


class TestDevice:
    def test_catalog_lookup(self):
        assert get_device("V100-16GB").memory_bytes == 16 * 2**30

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError):
            get_device("H100")

    def test_cpu_flat_rate(self):
        t1 = XEON_GOLD_6148.fft_time(1e9, in_flight_points=1e3)
        t2 = XEON_GOLD_6148.fft_time(1e9, in_flight_points=1e9)
        assert t1 == pytest.approx(t2)

    def test_gpu_derated_when_small(self):
        small = V100_32GB.fft_time(1e9, in_flight_points=1e5)
        large = V100_32GB.fft_time(1e9, in_flight_points=1e12)
        assert small > large

    def test_transfer_time(self):
        assert V100_32GB.transfer_time(12e9) == pytest.approx(1.0)

    def test_bad_kind_rejected(self):
        from repro.cluster.device import Device

        with pytest.raises(ConfigurationError):
            Device("x", "tpu", 1, 1, 1, 1, 0, 0)

    def test_catalog_has_paper_devices(self):
        names = set(DEVICE_CATALOG)
        assert {"V100-16GB", "V100-32GB", "P100-16GB", "Xeon-Gold-6148"} <= names


class TestCommCost:
    def test_eq1_formula(self):
        link = Link(alpha_s=0.0, bandwidth_bytes_per_s=1e9)
        n, p = 1024, 64
        expected = 2 * (n**3 / p) * 8 / 1e9
        assert comm_time_traditional_fft(n, p, link) == pytest.approx(expected)

    def test_eq2(self):
        link = Link(alpha_s=2e-6, bandwidth_bytes_per_s=1e9)
        assert alpha_beta_time(link, 1000) == pytest.approx(2e-6 + 1e-6)

    def test_eq6_less_than_eq1(self):
        link = Link()
        t_ours = comm_time_ours(1024, 128, 8, 64, link)
        t_fft = comm_time_traditional_fft(1024, 64, link)
        assert t_ours < t_fft

    def test_sparse_sample_count(self):
        assert sparse_sample_count(8, 8, 2) == 0
        assert sparse_sample_count(4, 2, 1) == 4**3 - 2**3

    def test_advantage_grows_with_r(self):
        link = Link()
        a1 = comm_advantage(1024, 128, 4, 64, link)
        a2 = comm_advantage(1024, 128, 16, 64, link)
        assert a2 > a1 > 1

    def test_latency_term(self):
        link = Link(alpha_s=1e-3, bandwidth_bytes_per_s=1e30)
        t = comm_time_traditional_fft(64, 8, link, include_latency=True)
        assert t == pytest.approx(2 * 7 * 1e-3, rel=1e-6)

    def test_rejects_bad_r(self):
        with pytest.raises(ConfigurationError):
            sparse_sample_count(8, 4, 0)


class TestFlops:
    def test_fft_stage(self):
        assert fft_stage_flops(10, 8) == pytest.approx(5 * 10 * 8 * 3)

    def test_length_one_free(self):
        assert fft_stage_flops(10, 1) == 0.0

    def test_dense_conv_flops_scaling(self):
        assert dense_conv_flops(64) > 2 * dense_conv_flops(32)

    def test_pruned_work_total(self):
        w = PrunedConvWork(n=64, k=8, sz=16, sy=16)
        assert w.total == pytest.approx(
            w.forward_x + w.forward_y + w.forward_z + w.pointwise
            + w.inverse_z + w.inverse_y + w.inverse_x
        )

    def test_axis_samples_flat(self):
        assert axis_samples_flat(64, 16, 4) == 16 + 12
        assert axis_samples_flat(64, 64, 4) == 64


class TestTimeModels:
    def test_cpu_dense_conv_matches_paper_512(self):
        """Calibration check: N=512 FFTW ~9.0 s (Table 3)."""
        t = dense_conv_time(XEON_GOLD_6148, 512)
        assert 7.0 < t < 12.0

    def test_speedup_grows_with_n(self):
        s = [
            speedup_ours_vs_dense(V100_32GB, XEON_GOLD_6148, n, 32, 4, batch=1024)
            for n in (128, 256, 512)
        ]
        assert s[0] < s[1] < s[2]

    def test_pruned_faster_with_bigger_batch(self):
        t_small = pruned_conv_time(V100_32GB, 256, 32, 4, batch=256)
        t_big = pruned_conv_time(V100_32GB, 256, 32, 4, batch=2048)
        assert t_big < t_small

    def test_rejects_k_gt_n(self):
        with pytest.raises(ConfigurationError):
            pruned_conv_time(V100_32GB, 64, 128, 4)


class TestCufftModel:
    def test_table4_estimates_exact(self):
        """The reverse-engineered formula matches the paper's column."""
        m = CufftWorkspaceModel()
        assert m.estimated_gb(2048, 32, 128) == pytest.approx(8.00, abs=0.01)
        assert m.estimated_gb(1024, 32, 32) == pytest.approx(2.50, abs=0.01)
        assert m.estimated_gb(512, 32, 16) == pytest.approx(0.625, abs=0.01)

    def test_table4_actuals_close(self):
        m = CufftWorkspaceModel()
        paper = {
            (512, 32, 16): 1.29,
            (1024, 32, 32): 4.33,
            (2048, 32, 128): 13.16,
            (2048, 64, 64): 26.20,
        }
        for (n, k, r), actual in paper.items():
            assert m.actual_gb(n, k, r) == pytest.approx(actual, rel=0.05)

    def test_actual_exceeds_estimate(self):
        m = CufftWorkspaceModel()
        assert m.actual_bytes(512, 32, 16) > m.estimated_bytes(512, 32, 16)

    def test_fits(self):
        m = CufftWorkspaceModel()
        assert m.fits(2048, 64, 64, V100_32GB.memory_bytes)
        assert not m.fits(2048, 128, 64, V100_32GB.memory_bytes)
        assert not m.fits(2048, 64, 64, V100_16GB.memory_bytes)

    def test_monotone_in_k(self):
        m = CufftWorkspaceModel()
        assert m.actual_gb(1024, 64, 32) > m.actual_gb(1024, 32, 32)

    def test_monotone_in_r(self):
        m = CufftWorkspaceModel()
        assert m.actual_gb(1024, 32, 16) > m.actual_gb(1024, 32, 32)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            CufftWorkspaceModel().estimated_bytes(64, 128, 4)
