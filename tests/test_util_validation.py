"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.util.validation import (
    check_cube,
    check_divides,
    check_dtype,
    check_positive_int,
    check_power_of_two,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ConfigurationError, match="my_param"):
            check_positive_int(-1, "my_param")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 64, 1024])
    def test_accepts_powers(self, n):
        assert check_power_of_two(n, "n") == n

    @pytest.mark.parametrize("n", [3, 6, 12, 100])
    def test_rejects_non_powers(self, n):
        with pytest.raises(ConfigurationError):
            check_power_of_two(n, "n")


class TestCheckDivides:
    def test_accepts_divisor(self):
        check_divides(4, 16, "d")

    def test_rejects_non_divisor(self):
        with pytest.raises(ConfigurationError):
            check_divides(5, 16, "d")


class TestCheckCube:
    def test_accepts_cube(self):
        arr = np.zeros((4, 4, 4))
        assert check_cube(arr, "a").shape == (4, 4, 4)

    def test_rejects_rank2(self):
        with pytest.raises(ShapeError):
            check_cube(np.zeros((4, 4)), "a")

    def test_rejects_non_cubic(self):
        with pytest.raises(ShapeError):
            check_cube(np.zeros((4, 4, 5)), "a")


class TestCheckDtype:
    def test_accepts_float(self):
        check_dtype(np.zeros(3), [np.floating], "a")

    def test_rejects_int_when_float_required(self):
        with pytest.raises(ConfigurationError):
            check_dtype(np.zeros(3, dtype=np.int32), [np.floating], "a")

    def test_accepts_complex_in_union(self):
        check_dtype(
            np.zeros(3, dtype=complex), [np.floating, np.complexfloating], "a"
        )


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")
        with pytest.raises(ConfigurationError):
            check_probability(-0.1, "p")
