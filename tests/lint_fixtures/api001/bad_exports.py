"""API001 positive fixture: __all__ and the public surface disagree."""

__all__ = ["pledged", "ghost_entry"]


def pledged():
    return 1


def unpledged_public():
    return 2


class UnpledgedThing:
    pass
