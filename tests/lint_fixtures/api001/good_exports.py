"""API001 negative fixture: complete __all__, private helpers exempt."""

__all__ = ["pledged", "PublicThing"]


def pledged():
    return _helper()


def _helper():
    return 1


class PublicThing:
    pass
