"""WIRE002 basename scoping fixture: any serialize.py is a hot path."""


def flatten(view):
    return bytes(view)  # finding: serialize.py is in scope by basename
