"""WIRE002 negative fixture: allocation and audited joins stay silent."""

from repro.util import copytrack


def scratch_buffers(names, segments):
    header = bytes(20)  # allocation, not a copy
    empty = bytes()  # no-arg allocation
    label = ", ".join(names)  # str join is not a payload concat
    blob = copytrack.measured_join(segments, site="ckpt.blob_join")
    return header, empty, label, blob


def encoded(text):
    return bytes(text, "utf8")  # two-arg str encode form
