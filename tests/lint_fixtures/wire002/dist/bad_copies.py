"""WIRE002 positive fixture: buffer copies on a dist/ hot path."""


def send_all(sock, view, segments):
    data = bytes(view)  # finding: materializes the memoryview
    sock.sendall(data)
    blob = b"".join(segments)  # finding: concatenates the segments
    return blob


def reframe(header, payload):
    return bytes(memoryview(payload))  # finding: copy of a fresh view
