"""WIRE002 scope fixture: the same constructs outside dist/ are fine."""


def cold_path(view, segments):
    data = bytes(view)  # out of scope: not under dist/, not serialize.py
    return data + b"".join(segments)
