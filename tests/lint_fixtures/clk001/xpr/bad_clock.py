"""CLK001 positive fixture: direct wall-clock reads in an xpr/ module."""

import time
from time import perf_counter


def time_trial(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bare_import_read():
    return perf_counter()
