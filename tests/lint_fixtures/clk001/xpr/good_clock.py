"""CLK001 negative fixture: xpr timing flows through the injectable clock."""


def time_trial(clock, fn):
    t0 = clock.now()
    fn()
    return clock.now() - t0


def join_with_timeout(thread, timeout_s):
    # thread.join(timeout) is a scheduling primitive, not a clock read.
    thread.join(timeout_s)
    return thread.is_alive()
