"""CLK001 negative fixture: pool waits flow through the injectable clock."""


def wait_for_cards(rendezvous, expected, timeout_s, clock):
    deadline = clock.now() + timeout_s
    while clock.now() < deadline:
        if len(rendezvous.cards()) >= expected:
            return rendezvous.cards()
        clock.sleep(0.05)
    raise TimeoutError("rendezvous never filled")


def join_agent(process, timeout_s):
    # process.join(timeout) is a scheduling primitive, not a clock read.
    process.join(timeout_s)
    return process.is_alive()
