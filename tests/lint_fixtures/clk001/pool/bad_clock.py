"""CLK001 positive fixture: direct wall-clock reads in a pool/ module."""

import time
from time import sleep


def wait_for_cards(rendezvous, expected, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if len(rendezvous.cards()) >= expected:
            return rendezvous.cards()
        sleep(0.05)
    raise TimeoutError("rendezvous never filled")
