"""CLK001 negative fixture: time flows through the injectable clock."""


def deadline_passed(clock, deadline):
    return clock.now() > deadline


def wait_a_bit(clock):
    clock.sleep(0.01)


def unrelated_time_method(schedule):
    # An attribute named 'time' on a non-time object is not a clock read.
    return schedule.time()
