"""CLK001 positive fixture: direct wall-clock reads in a serve/ module."""

import time
from time import monotonic


def deadline_passed(deadline):
    return time.monotonic() > deadline


def wait_a_bit():
    time.sleep(0.01)


def bare_import_read():
    return monotonic()
