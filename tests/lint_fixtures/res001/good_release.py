"""RES001 negative fixture: every acquisition is released or handed off."""

import socket


def serve_once(flag):
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.bind(("127.0.0.1", 0))
        if flag:
            return None
    finally:
        sock.close()
    return True


def pump_frames(transport, frames):
    window = transport.send_window(window=2)
    try:
        for frame in frames:
            window.submit(frame)
    except BaseException:
        window.close()
        raise
    window.close()
    return len(frames)


def open_with(path):
    with open(path) as handle:
        return handle.read()


def hand_off(registry):
    # ownership transfer: the listener escapes into the registry
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    registry.append(listener)
    return registry


def stored(self_like):
    # escape via attribute store: the object owns the release now
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    self_like.sock = sock


def returned(arena):
    view = arena.take(4096)
    return view
