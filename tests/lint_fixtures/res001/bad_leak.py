"""RES001 positive fixture: resources leak on at least one path."""

import socket


def serve_once(flag):
    # leak 1: the early return skips close()
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    if flag:
        return None
    sock.close()
    return True


def pump_frames(transport, frames):
    # leak 2: the window is never closed on any path
    window = transport.send_window(window=2)
    for frame in frames:
        window.submit(frame)
    return len(frames)
