"""WIRE001 positive fixture: re-typed literals from the canonical module."""

import struct


def sniff(data):
    return data[:4] == b"FXMT"


def parse(data):
    return struct.unpack("<4sBBxxii", data)


def check_payload(word):
    return word == 0x46584D54
