"""WIRE001 canonical fixture: the one home for this format's constants."""

import struct

MAGIC = b"FXMT"
HEADER = struct.Struct("<4sBBxxii")
PAYLOAD_MAGIC = 0x46584D54
