"""WIRE001 negative fixture: constants imported from their home module."""

MAGIC = None  # stands in for: from wire import MAGIC, HEADER


def sniff(data):
    return data[:4] == MAGIC


def unrelated_literals(flag):
    # Bytes/ints that are not canonical constants are fine anywhere.
    marker = b"ok"
    return (marker, 7, "hello world" if flag else None)
