"""EXC001 negative fixture: narrow, wrapped, or tagged handlers."""


class TransportError(Exception):
    pass


def narrow_handler(transport):
    try:
        return transport.poll()
    except (OSError, ValueError):
        return None


def wrapping_handler(transport):
    try:
        return transport.poll()
    except Exception as exc:
        raise TransportError("poll failed") from exc


def tagged_driver_boundary(transport):
    try:
        return transport.poll()
    except Exception:  # repro-lint: broad-except-ok(driver boundary fixture)
        return None
