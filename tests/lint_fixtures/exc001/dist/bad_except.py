"""EXC001 positive fixture: untyped catch-alls on a dist/ path."""


def swallow_everything(transport):
    try:
        return transport.poll()
    except Exception:
        return None


def bare_swallow(transport):
    try:
        return transport.poll()
    except:  # noqa: E722 - deliberate fixture violation
        return None
