"""LCK003 negative fixture: pairing proven on every path."""

import threading

_state_lock = threading.Lock()


def update(state, key, value):
    _state_lock.acquire()
    try:
        if key in state:
            state[key] = value
            return True
        return False
    finally:
        _state_lock.release()


def update_with(state, key, value):
    with _state_lock:
        state[key] = value


class Box:
    def __init__(self):
        self._box_lock = threading.Lock()
        self.items = []

    def push(self, item):
        self._box_lock.acquire()
        self.items.append(item)
        self._box_lock.release()

    def pop_nonblocking(self):
        # a failed non-blocking acquire must not count as held
        if not self._box_lock.acquire(False):
            return None
        try:
            return self.items.pop()
        finally:
            self._box_lock.release()
