"""LCK003 positive fixture: acquire without a guaranteed release."""

import threading

_state_lock = threading.Lock()


def update(state, key, value):
    # the False branch returns with the lock still held
    _state_lock.acquire()
    if key in state:
        state[key] = value
        _state_lock.release()
        return True
    return False


class Box:
    def __init__(self):
        self._box_lock = threading.Lock()
        self.items = []

    def push(self, item):
        # no release on any path
        self._box_lock.acquire()
        self.items.append(item)
