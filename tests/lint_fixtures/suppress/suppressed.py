"""Suppression fixture: one working disable comment, one stale one."""

import time
import threading

state_lock = threading.Lock()


def silenced():
    with state_lock:
        time.sleep(0.01)  # repro-lint: disable=LCK002


def stale_comment():
    x = 1  # repro-lint: disable=LCK002
    return x
