"""NDA001 negative fixture: contracts kept (or not declared)."""

import numpy as np


def right_dtype(n):
    """Build a grid.

    Returns
    -------
    np.ndarray
        float32 array of shape (n, n).
    """
    data = np.zeros((n, n))
    return data.astype(np.float32)


def no_contract(values):
    """Pass values through a dtype change the docstring never pledges."""
    return np.asarray(values).astype(np.float32)
