"""NDA001 positive fixture: docstring contracts the body contradicts."""

import numpy as np


def wrong_dtype(n):
    """Build a grid.

    Returns
    -------
    np.ndarray
        float64 array of shape (n, n).
    """
    data = np.zeros((n, n))
    return data.astype(np.float32)


def wrong_shape(values):
    """Tile values.

    Returns a float64 array of shape (n, n, n).
    """
    cube = np.asarray(values, dtype=np.float64)
    return cube.ravel()
