"""LCK001 negative fixture: nested acquisitions in one consistent order."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def first_path():
    with lock_a:
        with lock_b:
            pass


def second_path():
    with lock_a:
        with lock_b:
            pass
