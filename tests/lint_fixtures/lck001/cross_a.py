"""LCK001 cross-file fixture, half A: queue lock then state lock."""


class Shared:
    def drain(self):
        with self._queue_lock:
            with self._state_lock:
                pass
