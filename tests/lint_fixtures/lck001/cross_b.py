"""LCK001 cross-file fixture, half B: the same class locks, reversed."""


class Shared:
    def refill(self):
        with self._state_lock:
            with self._queue_lock:
                pass
