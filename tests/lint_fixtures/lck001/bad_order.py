"""LCK001 positive fixture: two functions acquire the same locks ABBA."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def first_path():
    with lock_a:
        with lock_b:
            pass


def second_path():
    with lock_b:
        with lock_a:
            pass
