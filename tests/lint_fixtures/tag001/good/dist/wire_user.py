"""TAG001 negative fixture: every tag paired send-side and receive-side."""

from .collectives import TAG_STREAM_END


def close_stream(comm, peers):
    for peer in peers:
        comm.send_payload(peer, TAG_STREAM_END, b"")


def pump(comm, frame):
    if frame.tag == TAG_STREAM_END:
        return None
    return frame
