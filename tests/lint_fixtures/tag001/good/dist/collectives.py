"""TAG001 negative fixture: unique tags, all homed in the registry."""

TAG_PING = 1
TAG_PONG = 2
TAG_STREAM_END = 3


def broadcast(comm, payload, tag=TAG_PING):
    comm.send_payload(0, tag, payload)
    return comm.recv_payload(0, tag)


def barrier(comm, tag=TAG_PONG):
    comm.exchange({}, tag)
