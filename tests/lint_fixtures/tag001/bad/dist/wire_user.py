"""TAG001 positive fixture: stray definition plus one-sided tags."""

from .collectives import TAG_ORPHAN, TAG_PONG

TAG_LOCAL = 4  # defined outside the registry


def send_orphan(comm, payload):
    # TAG_ORPHAN is sent but nothing ever dispatches it on receive
    comm.send_payload(1, TAG_ORPHAN, payload)


def drain(comm, frame):
    # TAG_PONG is dispatched on receive but never sent anywhere
    if frame.tag == TAG_PONG:
        return comm.recv_payload(0, TAG_PONG)
    return None
