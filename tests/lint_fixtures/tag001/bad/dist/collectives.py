"""TAG001 positive fixture: the registry, with a duplicate tag value."""

TAG_PING = 1
TAG_PONG = 2
TAG_ORPHAN = 3
TAG_CLASH = 1  # duplicate of TAG_PING


def broadcast(comm, payload, tag=TAG_PING):
    comm.send_payload(0, tag, payload)
    return comm.recv_payload(0, tag)
