"""GEN001 negative fixture: fenced job paths and bumping mutations."""


def run_job(agent, job):
    fence_generation(job.generation, agent.generation)
    if job.job_id < 0:
        raise ValueError("bad job")
    return execute_job(agent.comm, job)


def run_job_compare(agent, job):
    if job.generation != agent.generation:
        raise RuntimeError("stale")
    return execute_job(agent.comm, job)


def fence_generation(seen, current):
    if seen != current:
        raise RuntimeError("stale")


def execute_job(comm, job):
    return comm, job


class BumpingRoster:
    def __init__(self):
        self.generation = 0
        self._members = {}

    def admit(self, rank, card):
        self._members[rank] = card
        self.generation += 1

    @classmethod
    def form(cls, cards):
        roster = cls(generation=1)
        for rank, card in enumerate(cards):
            roster._members[rank] = card
        return roster

    def read_only(self, rank):
        # reads never require a bump
        return self._members.get(rank)
