"""GEN001 positive fixture: unfenced job path + silent roster mutation."""


def run_job(agent, job):
    # no fence on any path before execute_job
    if job.job_id < 0:
        raise ValueError("bad job")
    return execute_job(agent.comm, job)


def execute_job(comm, job):
    return comm, job


class LeakyRoster:
    def __init__(self):
        self.generation = 0
        self._members = {}

    def admit(self, rank, card):
        # mutates the members map without bumping the generation
        self._members[rank] = card
