"""LCK002 positive fixture: blocking calls inside critical sections."""

import time
import threading

state_lock = threading.Lock()


def sleeps_under_lock():
    with state_lock:
        time.sleep(0.1)


def recv_under_acquire(sock):
    state_lock.acquire()
    data = sock.recv(1024)
    state_lock.release()
    return data
