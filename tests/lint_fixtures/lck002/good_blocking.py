"""LCK002 negative fixture: I/O outside the lock, or under a send lock."""

import time
import threading

state_lock = threading.Lock()
send_lock = threading.Lock()


def sleeps_outside_lock():
    with state_lock:
        x = 1
    time.sleep(0.1)
    return x


def sendall_under_send_lock(sock, payload):
    # An I/O-serialization lock: blocking sendall is exactly its purpose.
    with send_lock:
        sock.sendall(payload)
