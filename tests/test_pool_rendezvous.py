"""Rendezvous bootstrap: cards, both backends, URL parsing, waiting.

The rendezvous is the only discovery layer a standing pool has, so both
backends must behave identically behind the :class:`Rendezvous`
interface, malformed input must fail loudly, and all waiting must be
drivable from a :class:`~repro.serve.clock.ManualClock`.
"""

import json

import pytest

from repro.errors import ConfigurationError, PoolError
from repro.pool.rendezvous import (
    AgentCard,
    CoordinatorServer,
    FileRendezvous,
    TcpRendezvous,
    new_agent_id,
    parse_rendezvous,
    wait_for_cards,
)
from repro.serve.clock import ManualClock


def _card(agent_id, port=4242):
    return AgentCard(agent_id=agent_id, host="127.0.0.1", port=port, pid=1)


class TestAgentCard:
    def test_doc_roundtrip(self):
        card = _card("abc123")
        assert AgentCard.from_doc(card.to_doc()) == card

    def test_malformed_doc_is_loud(self):
        with pytest.raises(PoolError, match="malformed agent card"):
            AgentCard.from_doc({"agent_id": "x", "host": "h"})
        with pytest.raises(PoolError, match="malformed agent card"):
            AgentCard.from_doc({"agent_id": "x", "host": "h", "port": "nope", "pid": 1})

    def test_agent_ids_are_unique(self):
        ids = {new_agent_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 12 for i in ids)


class TestFileRendezvous:
    def test_publish_list_withdraw_clear(self, tmp_path):
        rdv = FileRendezvous(tmp_path)
        rdv.publish(_card("bbb"))
        rdv.publish(_card("aaa"))
        assert [c.agent_id for c in rdv.cards()] == ["aaa", "bbb"]
        rdv.withdraw("aaa")
        rdv.withdraw("aaa")  # idempotent
        assert [c.agent_id for c in rdv.cards()] == ["bbb"]
        rdv.clear()
        assert rdv.cards() == []

    def test_republish_replaces_in_place(self, tmp_path):
        rdv = FileRendezvous(tmp_path)
        rdv.publish(_card("aaa", port=1))
        rdv.publish(_card("aaa", port=2))
        (only,) = rdv.cards()
        assert only.port == 2

    def test_garbage_files_are_skipped(self, tmp_path):
        rdv = FileRendezvous(tmp_path)
        rdv.publish(_card("aaa"))
        (tmp_path / "card-junk.json").write_text("{not json")
        (tmp_path / "card-short.json").write_text(json.dumps({"agent_id": "x"}))
        (tmp_path / "unrelated.txt").write_text("ignore me")
        assert [c.agent_id for c in rdv.cards()] == ["aaa"]

    def test_describe_names_the_directory(self, tmp_path):
        assert FileRendezvous(tmp_path).describe() == f"file://{tmp_path}"


class TestTcpRendezvous:
    @pytest.fixture
    def coordinator(self):
        server = CoordinatorServer().start()
        yield server
        server.stop()

    def test_publish_list_withdraw_clear(self, coordinator):
        rdv = TcpRendezvous(coordinator.host, coordinator.port)
        rdv.publish(_card("bbb"))
        rdv.publish(_card("aaa"))
        assert [c.agent_id for c in rdv.cards()] == ["aaa", "bbb"]
        rdv.withdraw("bbb")
        assert [c.agent_id for c in rdv.cards()] == ["aaa"]
        rdv.clear()
        assert rdv.cards() == []

    def test_coordinator_url_parses_back(self, coordinator):
        rdv = parse_rendezvous(coordinator.url())
        assert isinstance(rdv, TcpRendezvous)
        rdv.publish(_card("aaa"))
        assert len(rdv.cards()) == 1

    def test_unreachable_coordinator_is_a_pool_error(self):
        dead = CoordinatorServer()
        host, port = dead.host, dead.port
        dead.stop()
        with pytest.raises(PoolError, match="unreachable"):
            TcpRendezvous(host, port).cards()


class TestParseRendezvous:
    def test_file_scheme_absolute_and_relative(self, tmp_path):
        absolute = parse_rendezvous(f"file://{tmp_path}")
        assert isinstance(absolute, FileRendezvous)
        assert absolute.root == tmp_path
        relative = parse_rendezvous("file://some/dir")
        assert str(relative.root) == "some/dir"

    def test_file_scheme_without_directory(self):
        with pytest.raises(ConfigurationError, match="names no directory"):
            parse_rendezvous("file://")

    def test_tcp_scheme_requires_host_and_port(self):
        rdv = parse_rendezvous("tcp://10.0.0.5:29400")
        assert (rdv.host, rdv.port) == ("10.0.0.5", 29400)
        with pytest.raises(ConfigurationError, match="tcp://host:port"):
            parse_rendezvous("tcp://10.0.0.5")

    def test_unknown_scheme_is_loud(self):
        with pytest.raises(ConfigurationError, match="unknown rendezvous scheme"):
            parse_rendezvous("zk://ensemble/pool")


class TestWaitForCards:
    def test_returns_first_count_in_agent_id_order(self, tmp_path):
        rdv = FileRendezvous(tmp_path)
        for agent_id in ("ccc", "aaa", "bbb"):
            rdv.publish(_card(agent_id))
        cards = wait_for_cards(rdv, 2, timeout_s=1.0, clock=ManualClock())
        assert [c.agent_id for c in cards] == ["aaa", "bbb"]

    def test_exclude_filters_known_agents(self, tmp_path):
        rdv = FileRendezvous(tmp_path)
        rdv.publish(_card("old"))
        rdv.publish(_card("new"))
        cards = wait_for_cards(
            rdv, 1, timeout_s=1.0, clock=ManualClock(), exclude=("old",)
        )
        assert [c.agent_id for c in cards] == ["new"]

    def test_waits_until_late_publisher_shows_up(self, tmp_path):
        rdv = FileRendezvous(tmp_path)
        rdv.publish(_card("aaa"))
        clock = ManualClock()
        polls = []
        real_cards = rdv.cards

        def cards_with_late_join():
            polls.append(clock.now())
            if len(polls) == 3:  # shows up two poll slices in
                rdv.publish(_card("bbb"))
            return real_cards()

        rdv.cards = cards_with_late_join
        cards = wait_for_cards(rdv, 2, timeout_s=10.0, clock=clock)
        assert [c.agent_id for c in cards] == ["aaa", "bbb"]
        assert len(polls) == 3  # and never slept past the third poll

    def test_timeout_names_the_shortfall(self, tmp_path):
        rdv = FileRendezvous(tmp_path)
        rdv.publish(_card("aaa"))
        with pytest.raises(PoolError, match="1 of 4 agents"):
            wait_for_cards(rdv, 4, timeout_s=2.0, clock=ManualClock())
