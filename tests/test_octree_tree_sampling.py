"""Tests for octree construction and the banded sampling patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.octree.sampling import (
    BandedRatePolicy,
    build_adaptive_pattern,
    build_flat_pattern,
)
from repro.octree.tree import Octree


def _uniform_rate(rate):
    return lambda lo, hi: (rate, rate)


class TestOctreeBuild:
    def test_uniform_rate_single_leaf(self):
        tree = Octree.build(16, _uniform_rate(2))
        assert tree.num_leaves == 1
        assert tree.leaves[0].rate == 2

    def test_split_on_nonuniform(self):
        def rate(lo, hi):
            # left half (x < 8) dense, right half sparse
            if hi[0] <= 8:
                return (1, 1)
            if lo[0] >= 8:
                return (4, 4)
            return (1, 4)

        tree = Octree.build(16, rate)
        assert tree.num_leaves == 8
        tree.validate_partition()

    def test_partition_valid(self):
        pol = BandedRatePolicy(n=32, k=8, corner=(8, 8, 8))
        tree = Octree.build(32, pol.region_rate)
        tree.validate_partition()

    def test_non_pow2_rejected(self):
        with pytest.raises(ConfigurationError):
            Octree.build(12, _uniform_rate(1))

    def test_min_cell_respected(self):
        pol = BandedRatePolicy(n=32, k=8, corner=(8, 8, 8))
        tree = Octree.build(32, pol.region_rate, min_cell=4)
        assert min(leaf.size for leaf in tree.leaves) >= 4

    def test_find_leaf(self):
        pol = BandedRatePolicy(n=32, k=8, corner=(8, 8, 8))
        tree = Octree.build(32, pol.region_rate)
        leaf = tree.find_leaf((9, 9, 9))
        assert leaf.contains((9, 9, 9))
        with pytest.raises(ConfigurationError):
            tree.find_leaf((40, 0, 0))

    def test_rate_clamped_to_cell_size(self):
        tree = Octree.build(8, _uniform_rate(64))
        assert tree.leaves[0].rate <= 8

    def test_bad_rate_fn(self):
        with pytest.raises(ConfigurationError):
            Octree.build(8, _uniform_rate(0))


class TestBandedRatePolicy:
    def test_dense_inside_subdomain(self):
        pol = BandedRatePolicy(n=64, k=16, corner=(24, 24, 24))
        assert pol.rate_at((30, 30, 30)) == 1

    def test_near_band(self):
        pol = BandedRatePolicy(n=64, k=16, corner=(24, 24, 24))
        assert pol.rate_at((24 - 4, 30, 30)) == pol.r_near

    def test_mid_band(self):
        pol = BandedRatePolicy(n=256, k=16, corner=(120, 120, 120))
        # distance ~20 (> k/2=8, < 4k=64)
        assert pol.rate_at((100, 125, 125)) == pol.r_mid

    def test_far_band(self):
        pol = BandedRatePolicy(n=256, k=16, corner=(120, 120, 120))
        assert pol.rate_at((10, 125, 125)) == pol.r_far

    def test_boundary_band_wins(self):
        pol = BandedRatePolicy(
            n=64, k=16, corner=(24, 24, 24), boundary_width=2, boundary_rate=1
        )
        assert pol.rate_at((0, 30, 30)) == 1
        assert pol.rate_at((63, 30, 30)) == 1

    def test_region_rate_brackets_point_rates(self):
        pol = BandedRatePolicy(n=64, k=16, corner=(24, 24, 24), boundary_width=2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            lo = rng.integers(0, 56, size=3)
            size = int(rng.integers(1, 8))
            hi = np.minimum(lo + size, 64)
            rmin, rmax = pol.region_rate(tuple(lo), tuple(hi))
            for _ in range(10):
                p = tuple(int(rng.integers(l, h)) for l, h in zip(lo, hi))
                assert rmin <= pol.rate_at(p) <= rmax

    def test_invalid_corner(self):
        with pytest.raises(ConfigurationError):
            BandedRatePolicy(n=32, k=16, corner=(20, 0, 0))

    def test_rates_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BandedRatePolicy(n=32, k=8, corner=(0, 0, 0), r_near=0)


class TestSamplingPattern:
    def test_flat_pattern_counts(self):
        pat = build_flat_pattern(32, 8, (8, 8, 8), r=2)
        # dense block present exactly once
        coords = pat.sample_coords
        inside = (
            (coords[:, 0] >= 8) & (coords[:, 0] < 16)
            & (coords[:, 1] >= 8) & (coords[:, 1] < 16)
            & (coords[:, 2] >= 8) & (coords[:, 2] < 16)
        )
        assert inside.sum() == 8**3

    def test_samples_unique(self):
        pat = build_adaptive_pattern(32, 8, (8, 8, 8), r_far=8)
        coords = pat.sample_coords
        assert len(np.unique(coords, axis=0)) == len(coords)

    def test_compression_ratio_gt_one(self):
        pat = build_flat_pattern(32, 8, (8, 8, 8), r=4)
        assert pat.compression_ratio > 2

    def test_axis_coordinate_sets_sorted_unique(self):
        pat = build_adaptive_pattern(32, 8, (16, 16, 16))
        for axis in range(3):
            c = pat.axis_coordinate_set(axis)
            assert np.all(np.diff(c) > 0)
            assert c[0] >= 0 and c[-1] < 32

    def test_axis_sets_cover_all_sample_coords(self):
        pat = build_adaptive_pattern(32, 8, (8, 8, 8))
        coords = pat.sample_coords
        for axis in range(3):
            axis_set = set(pat.axis_coordinate_set(axis).tolist())
            assert set(coords[:, axis].tolist()) <= axis_set

    def test_rate_histogram_totals(self):
        pat = build_flat_pattern(32, 8, (8, 8, 8), r=4)
        assert sum(pat.rate_histogram().values()) == pat.sample_count

    def test_occupancy_slice_subdomain_dense(self):
        pat = build_flat_pattern(32, 8, (8, 8, 8), r=4)
        mask = pat.occupancy_slice(10)
        assert mask[8:16, 8:16].all()

    def test_occupancy_bad_z(self):
        pat = build_flat_pattern(16, 4, (0, 0, 0), r=2)
        with pytest.raises(ConfigurationError):
            pat.occupancy_slice(99)

    def test_metadata_bytes(self):
        pat = build_flat_pattern(16, 4, (0, 0, 0), r=2)
        assert pat.metadata_nbytes() == 20 * pat.num_cells

    def test_denser_rate_means_more_samples(self):
        p2 = build_flat_pattern(32, 8, (8, 8, 8), r=2)
        p8 = build_flat_pattern(32, 8, (8, 8, 8), r=8)
        assert p2.sample_count > p8.sample_count

    @given(st.sampled_from([16, 32]), st.sampled_from([4, 8]), st.sampled_from([2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_pattern_partition_property(self, n, k, r):
        """Cells tile the grid; every grid point belongs to exactly one."""
        if k >= n:
            return
        pat = build_flat_pattern(n, k, (0, 0, 0), r=r)
        total = sum(c.size**3 for c in pat.cells)
        assert total == n**3
