"""Tests for the kernels package: Gaussian, Poisson, Gamma, properties."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.kernels.freq import frequency_grid, frequency_norm2
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.green_massif import (
    LameParameters,
    apply_gamma_generic,
    apply_gamma_hat,
    gamma_hat_tensor,
)
from repro.kernels.poisson import PoissonKernel
from repro.kernels.properties import (
    decay_profile,
    effective_support_radius,
    fit_power_law_decay,
    is_centrosymmetric,
    spectrum_is_real,
)
from repro.massif.elasticity import isotropic_stiffness


class TestFrequencyGrid:
    def test_shapes_broadcastable(self):
        xi_x, xi_y, xi_z = frequency_grid(8)
        assert xi_x.shape == (8, 1, 1)
        assert (xi_x + xi_y + xi_z).shape == (8, 8, 8)

    def test_integer_frequencies(self):
        xi_x, _, _ = frequency_grid(8)
        np.testing.assert_array_equal(
            xi_x.ravel(), [0, 1, 2, 3, -4, -3, -2, -1]
        )

    def test_norm2_zero_at_origin(self):
        n2 = frequency_norm2(8)
        assert n2[0, 0, 0] == 0
        assert (n2.ravel()[1:] > 0).all()


class TestGaussianKernel:
    def test_spectrum_is_real(self):
        g = GaussianKernel(n=16, sigma=1.5)
        spec_complex = np.fft.fftn(np.fft.ifftshift(g.spatial()))
        assert np.abs(spec_complex.imag).max() < 1e-9 * np.abs(spec_complex).max()

    def test_spatial_centered(self):
        g = GaussianKernel(n=16, sigma=2.0)
        assert np.unravel_index(np.argmax(g.spatial()), (16,) * 3) == (8, 8, 8)

    def test_convolution_no_shift(self):
        """Convolution with the kernel leaves an impulse in place (smeared)."""
        n = 16
        g = GaussianKernel(n=n, sigma=1.0)
        field = np.zeros((n, n, n))
        field[5, 6, 7] = 1.0
        out = g.convolve_dense(field)
        assert np.unravel_index(np.argmax(out), out.shape) == (5, 6, 7)

    def test_convolve_preserves_mass(self):
        n = 16
        g = GaussianKernel(n=n, sigma=1.0)
        field = np.zeros((n, n, n))
        field[3, 3, 3] = 2.0
        out = g.convolve_dense(field)
        assert out.sum() == pytest.approx(2.0 * g.spatial().sum())

    def test_decay_length(self):
        assert GaussianKernel(n=16, sigma=2.0).decay_length() == pytest.approx(
            2.0 * np.sqrt(2)
        )

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            GaussianKernel(n=16, sigma=-1.0)

    def test_convolve_shape_check(self):
        g = GaussianKernel(n=16, sigma=1.0)
        with pytest.raises(ConfigurationError):
            g.convolve_dense(np.zeros((8, 8, 8)))


class TestPoissonKernel:
    def test_single_mode_solution(self):
        n = 32
        pk = PoissonKernel(n=n, length=1.0)
        x = np.arange(n) / n
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        f = np.sin(2 * np.pi * X)
        u = pk.solve(f)
        np.testing.assert_allclose(u, f / (2 * np.pi) ** 2, atol=1e-12)

    def test_solution_zero_mean(self, rng):
        pk = PoissonKernel(n=16)
        u = pk.solve(rng.standard_normal((16, 16, 16)))
        assert abs(u.mean()) < 1e-12

    def test_laplacian_roundtrip(self, rng):
        """-lap(solve(f)) == f - mean(f) via spectral laplacian."""
        n = 16
        pk = PoissonKernel(n=n, length=1.0)
        f = rng.standard_normal((n, n, n))
        u = pk.solve(f)
        norm2 = frequency_norm2(n) * (2 * np.pi) ** 2
        lap_u = np.real(np.fft.ifftn(-norm2 * np.fft.fftn(u)))
        np.testing.assert_allclose(-lap_u, f - f.mean(), atol=1e-9)

    def test_spectrum_real_decaying(self):
        spec = PoissonKernel(n=16).spectrum()
        assert spec[0, 0, 0] == 0.0
        assert spec[1, 0, 0] > spec[2, 0, 0] > spec[4, 0, 0]

    def test_spatial_decays_like_1_over_r(self):
        g = PoissonKernel(n=64, length=1.0).spatial()
        # periodic Green's function ~ 1/(4 pi r): ratio at r=2 vs r=8
        assert g[2, 0, 0] > 3 * g[8, 0, 0]

    def test_shape_check(self):
        with pytest.raises(ConfigurationError):
            PoissonKernel(n=8).solve(np.zeros((4, 4, 4)))


class TestLameParameters:
    def test_from_young_poisson(self):
        lame = LameParameters.from_young_poisson(1.0, 0.25)
        assert lame.mu == pytest.approx(0.4)
        assert lame.lam == pytest.approx(0.4)

    def test_rejects_bad_poisson(self):
        with pytest.raises(ConfigurationError):
            LameParameters.from_young_poisson(1.0, 0.5)

    def test_rejects_nonpositive_mu(self):
        with pytest.raises(ConfigurationError):
            LameParameters(lam=1.0, mu=0.0)


class TestGammaOperator:
    def test_apply_matches_tensor_contraction(self, rng):
        lame = LameParameters.from_young_poisson(1.0, 0.3)
        n = 8
        G = gamma_hat_tensor(n, lame)
        tau = rng.standard_normal((3, 3, n, n, n)) + 1j * rng.standard_normal(
            (3, 3, n, n, n)
        )
        ref = np.einsum("ijklxyz,klxyz->ijxyz", G, tau)
        ref[:, :, 0, 0, 0] = 0
        np.testing.assert_allclose(apply_gamma_hat(tau, lame), ref, atol=1e-10)

    def test_projection_identity(self, rng):
        """Gamma0 : (C0 : sym grad u) == sym grad u for any displacement
        (off the Nyquist planes, which the discrete operator annihilates
        by convention — see the green_massif module docstring)."""
        lame = LameParameters.from_young_poisson(1.0, 0.3)
        C0 = isotropic_stiffness(lame)
        n = 8
        u_hat = rng.standard_normal((3, n, n, n)) + 1j * rng.standard_normal(
            (3, n, n, n)
        )
        u_hat[:, n // 2, :, :] = 0  # clear Nyquist planes
        u_hat[:, :, n // 2, :] = 0
        u_hat[:, :, :, n // 2] = 0
        f = np.fft.fftfreq(n, 1 / n)
        xi = [f.reshape(n, 1, 1), f.reshape(1, n, 1), f.reshape(1, 1, n)]
        eps = np.empty((3, 3, n, n, n), dtype=complex)
        for i in range(3):
            for j in range(3):
                eps[i, j] = 0.5j * (xi[i] * u_hat[j] + xi[j] * u_hat[i])
        sig = np.einsum("ijkl,klxyz->ijxyz", C0, eps)
        eps0 = eps.copy()
        eps0[:, :, 0, 0, 0] = 0
        np.testing.assert_allclose(apply_gamma_hat(sig, lame), eps0, atol=1e-10)

    def test_projector_property_spatial(self, rng):
        """Gamma0 C0 Gamma0 == Gamma0 through the full real-field pipeline —
        the property whose violation (pre-Nyquist-fix) shifted the
        accelerated scheme's fixed point."""
        lame = LameParameters.from_young_poisson(1.0, 0.3)
        C0 = isotropic_stiffness(lame)
        n = 8
        tau = rng.standard_normal((3, 3, n, n, n))

        def gamma(x):
            return np.real(
                np.fft.ifftn(
                    apply_gamma_hat(np.fft.fftn(x, axes=(2, 3, 4)), lame),
                    axes=(2, 3, 4),
                )
            )

        e1 = gamma(tau)
        e2 = gamma(np.einsum("ijkl,klxyz->ijxyz", C0, e1))
        np.testing.assert_allclose(e2, e1, atol=1e-10)

    def test_output_symmetric(self, rng):
        lame = LameParameters.from_young_poisson(2.0, 0.2)
        n = 4
        tau = rng.standard_normal((3, 3, n, n, n)) + 0j
        out = apply_gamma_hat(tau, lame)
        np.testing.assert_allclose(out, out.transpose(1, 0, 2, 3, 4), atol=1e-12)

    def test_generic_pencil_layout(self, rng):
        """Pencil-batched evaluation matches the dense-grid evaluation
        (including the Nyquist-plane convention when ``n`` is passed)."""
        lame = LameParameters.from_young_poisson(1.0, 0.3)
        n = 8
        tau = rng.standard_normal((3, 3, n, n, n)) + 1j * rng.standard_normal(
            (3, 3, n, n, n)
        )
        dense = apply_gamma_hat(tau, lame, zero_mean=False)
        f = np.fft.fftfreq(n, 1 / n)
        # pencils along z for rows (ix=2, iy=3)
        pencil_tau = tau[:, :, 2, 3, :].reshape(3, 3, 1, n)
        xi = (
            np.full((1, 1), f[2]),
            np.full((1, 1), f[3]),
            f.reshape(1, n),
        )
        got = apply_gamma_generic(pencil_tau, xi, lame, n=n)
        np.testing.assert_allclose(got[:, :, 0, :], dense[:, :, 2, 3, :], atol=1e-10)

    def test_nyquist_planes_annihilated(self, rng):
        """The operator maps Nyquist-plane modes to zero (even grids)."""
        lame = LameParameters.from_young_poisson(1.0, 0.3)
        n = 8
        tau = rng.standard_normal((3, 3, n, n, n)) + 0j
        out = apply_gamma_hat(tau, lame)
        assert np.abs(out[:, :, n // 2, :, :]).max() == 0.0
        assert np.abs(out[:, :, :, n // 2, :]).max() == 0.0
        assert np.abs(out[:, :, :, :, n // 2]).max() == 0.0

    def test_gamma_homogeneous_degree_zero(self):
        """Gamma(xi) == Gamma(2 xi): depends on direction only."""
        lame = LameParameters.from_young_poisson(1.0, 0.3)
        tau = np.ones((3, 3, 1, 1, 1), dtype=complex)
        xi1 = (np.array([[[1.0]]]), np.array([[[2.0]]]), np.array([[[3.0]]]))
        xi2 = tuple(2.0 * x for x in xi1)
        np.testing.assert_allclose(
            apply_gamma_generic(tau, xi1, lame),
            apply_gamma_generic(tau, xi2, lame),
            atol=1e-12,
        )

    def test_shape_validation(self):
        lame = LameParameters(lam=1.0, mu=1.0)
        with pytest.raises(ShapeError):
            apply_gamma_hat(np.zeros((2, 2, 4, 4, 4)), lame)


class TestProperties:
    def test_gaussian_real_spectrum(self):
        assert spectrum_is_real(GaussianKernel(n=16, sigma=2.0).spatial())

    def test_shifted_kernel_not_real(self, rng):
        g = np.roll(GaussianKernel(n=16, sigma=2.0).spatial(), 3, axis=0)
        assert not spectrum_is_real(g)

    def test_centrosymmetry(self):
        assert is_centrosymmetric(GaussianKernel(n=16, sigma=1.0).spatial())
        assert not is_centrosymmetric(
            np.roll(GaussianKernel(n=16, sigma=1.0).spatial(), 1, axis=1)
        )

    def test_decay_profile_monotone_for_gaussian(self):
        radii, means = decay_profile(GaussianKernel(n=32, sigma=2.0).spatial())
        peak_bin = int(np.argmax(means))
        tail = means[peak_bin:][means[peak_bin:] > 0]
        assert (np.diff(tail) <= 1e-12).all()

    def test_power_law_fit_poisson(self):
        """Poisson Green's function decays ~1/r: exponent near 1."""
        g = PoissonKernel(n=64).spatial()
        p = fit_power_law_decay(g, r_min=2.0)
        assert 0.5 < p < 2.0

    def test_gaussian_decays_faster_than_poisson(self):
        pg = fit_power_law_decay(PoissonKernel(n=32).spatial(), r_min=2.0)
        gg = fit_power_law_decay(
            GaussianKernel(n=32, sigma=1.5).spatial(), r_min=2.0
        )
        assert gg > pg

    def test_effective_support_grows_with_sigma(self):
        r1 = effective_support_radius(GaussianKernel(n=32, sigma=1.0).spatial())
        r2 = effective_support_radius(GaussianKernel(n=32, sigma=3.0).spatial())
        assert r2 > r1

    def test_effective_support_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            effective_support_radius(np.ones((4, 4, 4)), energy_fraction=0.0)

    def test_zero_kernel_support(self):
        assert effective_support_radius(np.zeros((4, 4, 4))) == 0.0
