"""Unit tests for repro.util.timing."""

import pytest

from repro.util.timing import SimClock, WallTimer


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5, "comm")
        clock.advance(0.5, "compute")
        assert clock.now == pytest.approx(2.0)

    def test_category_totals(self):
        clock = SimClock()
        clock.advance(1.0, "comm")
        clock.advance(2.0, "comm")
        clock.advance(3.0, "compute")
        assert clock.category_total("comm") == pytest.approx(3.0)
        assert clock.category_total("compute") == pytest.approx(3.0)
        assert clock.category_total("missing") == 0.0

    def test_breakdown_is_copy(self):
        clock = SimClock()
        clock.advance(1.0, "a")
        b = clock.breakdown()
        b["a"] = 99.0
        assert clock.category_total("a") == pytest.approx(1.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(5.0, "x")
        clock.reset()
        assert clock.now == 0.0
        assert clock.category_total("x") == 0.0


class TestWallTimer:
    def test_measures_nonnegative(self):
        with WallTimer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_elapsed_set_after_exit(self):
        t = WallTimer()
        assert t.elapsed == 0.0
        with t:
            pass
        assert t.elapsed > 0.0
