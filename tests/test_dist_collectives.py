"""Communicator tests: collectives, tag matching, heartbeat liveness."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.dist.collectives import Communicator
from repro.dist.heartbeat import HeartbeatMonitor
from repro.dist.transport import LocalFabric
from repro.errors import CommunicationError, RankFailure, TransportError


def _communicators(size, **kwargs):
    fabric = LocalFabric(size)
    comms = [
        Communicator(fabric.endpoint(r), recv_timeout_s=5.0, **kwargs)
        for r in range(size)
    ]
    return fabric, comms


def _run_all(comms, fn, timeout=30):
    with ThreadPoolExecutor(max_workers=len(comms)) as pool:
        futures = [pool.submit(fn, comm) for comm in comms]
        return [f.result(timeout=timeout) for f in futures]


class TestPointToPoint:
    def test_tagged_send_recv(self):
        _fabric, (a, b) = _communicators(2)
        a.send_payload(1, b"x", tag=42)
        assert b.recv_payload(0, tag=42) == b"x"

    def test_out_of_order_tags_are_parked(self):
        _fabric, (a, b) = _communicators(2)
        a.send_payload(1, b"first", tag=1)
        a.send_payload(1, b"second", tag=2)
        # asking for tag 2 first parks the tag-1 frame for later
        assert b.recv_payload(0, tag=2) == b"second"
        assert b.recv_payload(0, tag=1) == b"first"

    def test_recv_timeout_typed(self):
        _fabric, (_a, b) = _communicators(2)
        with pytest.raises(TransportError, match="timed out"):
            b.recv_payload(0, tag=1, timeout=0.1)

    def test_rank_size_properties(self):
        _fabric, (a, b) = _communicators(2)
        assert (a.rank, a.size) == (0, 2)
        assert (b.rank, b.size) == (1, 2)


class TestCollectives:
    def test_broadcast(self):
        _fabric, comms = _communicators(3)

        def run(comm):
            payload = b"the field" if comm.rank == 0 else None
            return comm.broadcast(payload, root=0)

        assert _run_all(comms, run) == [b"the field"] * 3

    def test_broadcast_nonzero_root(self):
        _fabric, comms = _communicators(3)

        def run(comm):
            payload = b"from 2" if comm.rank == 2 else None
            return comm.broadcast(payload, root=2)

        assert _run_all(comms, run) == [b"from 2"] * 3

    def test_broadcast_root_needs_payload(self):
        _fabric, (a, _b) = _communicators(2)
        with pytest.raises(CommunicationError, match="payload"):
            a.broadcast(None, root=0)

    def test_broadcast_root_out_of_range(self):
        _fabric, (a, _b) = _communicators(2)
        with pytest.raises(CommunicationError, match="root"):
            a.broadcast(b"x", root=9)

    def test_sparse_allgather_indexed_by_rank(self):
        _fabric, comms = _communicators(4)

        def run(comm):
            return comm.sparse_allgather(f"r{comm.rank}".encode())

        for result in _run_all(comms, run):
            assert result == [b"r0", b"r1", b"r2", b"r3"]

    def test_sparse_allgather_single_rank(self):
        _fabric, comms = _communicators(1)
        assert comms[0].sparse_allgather(b"alone") == [b"alone"]

    def test_sparse_allgather_counts_exchange_category(self):
        _fabric, comms = _communicators(2)

        def run(comm):
            return comm.sparse_allgather(b"p" * 100)

        _run_all(comms, run)
        for comm in comms:
            assert comm.transport.ledger.bytes_sent("exchange") > 100

    def test_alltoall_distinct_payloads(self):
        _fabric, comms = _communicators(3)

        def run(comm):
            payloads = [f"{comm.rank}->{dst}".encode() for dst in range(3)]
            return comm.alltoall(payloads)

        results = _run_all(comms, run)
        for rank, got in enumerate(results):
            assert got == [f"{src}->{rank}".encode() for src in range(3)]

    def test_alltoall_wrong_arity(self):
        _fabric, (a, _b) = _communicators(2)
        with pytest.raises(CommunicationError, match="one payload per rank"):
            a.alltoall([b"only one"])

    def test_barrier_completes(self):
        _fabric, comms = _communicators(3)
        assert _run_all(comms, lambda c: c.barrier() or True) == [True] * 3

    def test_dead_peer_fails_allgather(self):
        fabric, comms = _communicators(3)
        fabric.kill(2)

        def run(comm):
            if comm.rank == 2:
                return None
            with pytest.raises(RankFailure):
                comm.sparse_allgather(b"x")
            return True

        assert _run_all(comms[:2], run) == [True, True]


class TestHeartbeatMonitor:
    def test_fresh_peers_not_overdue(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor([1, 2], timeout_s=1.0, clock=clock)
        assert monitor.overdue() == []
        monitor.check()  # no raise

    def test_silent_peer_detected(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor([1, 2], timeout_s=1.0, clock=clock)
        clock.t = 0.9
        monitor.record(1)
        clock.t = 1.5
        assert monitor.overdue() == [2]
        with pytest.raises(RankFailure, match=r"\[2\]"):
            monitor.check()

    def test_any_frame_counts_as_liveness(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor([1], timeout_s=1.0, clock=clock)
        for step in range(1, 10):
            clock.t = step * 0.8
            monitor.record(1)
        assert monitor.overdue() == []

    def test_unknown_rank_recorded_harmlessly(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor([1], timeout_s=1.0, clock=clock)
        monitor.record(99)  # not tracked; no KeyError
        assert monitor.overdue() == []


class FakeClock:
    """Deterministic monotonic clock for liveness tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestHeartbeatIntegration:
    def test_sender_beacons_and_recv_stays_alive(self):
        _fabric, comms = _communicators(2, heartbeat_s=0.05)
        try:
            # rank 1 sends nothing for a while; rank 0's receive must see
            # heartbeats (consumed silently) and then the real payload
            result = {}

            def late_send():
                import time

                time.sleep(0.3)
                comms[1].send_payload(0, b"late", tag=9)

            t = threading.Thread(target=late_send)
            t.start()
            result["got"] = comms[0].recv_payload(1, tag=9, timeout=5.0)
            t.join(timeout=5)
            assert result["got"] == b"late"
            assert comms[0].monitor is not None
            assert comms[0].monitor.overdue() == []
        finally:
            for c in comms:
                c.close()
