"""Unit + property tests for repro.util.arrays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.util.arrays import (
    centered_gaussian,
    chunk_slices,
    embed_subcube,
    extract_subcube,
    l2_relative_error,
    linf_relative_error,
    next_pow2,
    pad_to_shape,
)


class TestNextPow2:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (17, 32), (1024, 1024)]
    )
    def test_values(self, n, expected):
        assert next_pow2(n) == expected

    @given(st.integers(min_value=1, max_value=10**6))
    def test_properties(self, n):
        p = next_pow2(n)
        assert p >= n
        assert p & (p - 1) == 0
        assert p < 2 * n or n == 1  # minimality


class TestPadToShape:
    def test_pads_with_zeros(self):
        out = pad_to_shape(np.ones((2, 3)), (4, 5))
        assert out.shape == (4, 5)
        assert out[:2, :3].sum() == 6
        assert out.sum() == 6

    def test_same_shape_copies(self):
        a = np.ones((2, 2))
        out = pad_to_shape(a, (2, 2))
        out[0, 0] = 7
        assert a[0, 0] == 1  # no aliasing

    def test_rejects_shrink(self):
        with pytest.raises(ShapeError):
            pad_to_shape(np.ones((4,)), (2,))

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ShapeError):
            pad_to_shape(np.ones((4,)), (4, 4))


class TestEmbedExtract:
    def test_roundtrip(self, rng):
        sub = rng.standard_normal((3, 4, 5))
        grid = embed_subcube(sub, (10, 10, 10), (2, 3, 4))
        back = extract_subcube(grid, (2, 3, 4), (3, 4, 5))
        np.testing.assert_array_equal(back, sub)

    def test_embed_zeros_elsewhere(self, rng):
        sub = rng.standard_normal((2, 2, 2))
        grid = embed_subcube(sub, (6, 6, 6), (0, 0, 0))
        assert grid[3:, :, :].sum() == 0

    def test_embed_out_of_bounds(self):
        with pytest.raises(ShapeError):
            embed_subcube(np.ones((4, 4, 4)), (6, 6, 6), (4, 0, 0))

    def test_extract_out_of_bounds(self):
        with pytest.raises(ShapeError):
            extract_subcube(np.ones((6, 6, 6)), (5, 0, 0), (4, 2, 2))

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_embed_preserves_norm(self, k, c):
        sub = np.ones((k, k, k))
        grid = embed_subcube(sub, (8, 8, 8), (c, c, c))
        assert grid.sum() == k**3


class TestErrors:
    def test_l2_zero_for_equal(self, rng):
        a = rng.standard_normal((4, 4))
        assert l2_relative_error(a, a) == 0.0

    def test_l2_known_value(self):
        exact = np.array([3.0, 4.0])
        approx = np.array([3.0, 5.0])
        assert l2_relative_error(approx, exact) == pytest.approx(1.0 / 5.0)

    def test_l2_zero_denominator(self):
        assert l2_relative_error(np.ones(2), np.zeros(2)) == pytest.approx(np.sqrt(2))

    def test_linf(self):
        assert linf_relative_error(np.array([1.0, 2.5]), np.array([1.0, 2.0])) == (
            pytest.approx(0.25)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            l2_relative_error(np.ones(3), np.ones(4))


class TestCenteredGaussian:
    def test_peak_at_center(self):
        g = centered_gaussian(8, 1.0)
        assert np.unravel_index(np.argmax(g), g.shape) == (4, 4, 4)

    def test_peak_value_is_one(self):
        assert centered_gaussian(8, 2.0).max() == pytest.approx(1.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ShapeError):
            centered_gaussian(8, 0.0)


class TestChunkSlices:
    def test_tiles_axis(self):
        slices = chunk_slices(8, 2)
        assert len(slices) == 4
        covered = sorted(i for s in slices for i in range(s.start, s.stop))
        assert covered == list(range(8))

    def test_rejects_non_divisor(self):
        with pytest.raises(ShapeError):
            chunk_slices(8, 3)
