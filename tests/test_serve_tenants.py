"""Multi-tenant serving: quotas, isolation, and deterministic load mixes.

The regression this file guards: a noisy tenant flooding the front door
must be shed at *its own* quota, leaving the shared waiting room — and
therefore every quiet tenant's latency — untouched.  Quotas bound
waiting-room occupancy only; tenants still share batches (tenant is
deliberately not part of the compatibility key).
"""

import numpy as np
import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.kernels.gaussian import GaussianKernel
from repro.serve import (
    BoundedRequestQueue,
    ConvolutionServer,
    DEFAULT_TENANT,
    ManualClock,
    RequestState,
    ServerConfig,
    TenantSpec,
)
from repro.serve.loadgen import LoadSpec

N, K = 16, 4


@pytest.fixture
def server():
    srv = ConvolutionServer(
        ServerConfig(
            n=N,
            k=K,
            max_queue=16,
            max_batch_size=4,
            max_wait_s=0.05,
            tenant_quotas={"noisy": 4},
        ),
        clock=ManualClock(),
    )
    srv.register_kernel("g", GaussianKernel(n=N, sigma=1.5).spectrum())
    return srv


class TestQuotaAdmission:
    def test_noisy_tenant_shed_at_quota_not_at_global_bound(self, server, rng):
        fields = [rng.standard_normal((N,) * 3) for _ in range(8)]
        handles = [server.submit(f, kernel="g", tenant="noisy") for f in fields]
        states = [h.state for h in handles]
        assert states[:4] == [RequestState.QUEUED] * 4
        assert states[4:] == [RequestState.REJECTED] * 4
        with pytest.raises(AdmissionError, match="tenant 'noisy' at quota"):
            handles[4].result(timeout=0)
        snap = server.snapshot()
        assert snap["counters"]["tenant.noisy.rejected"] == 4
        # global capacity was never the limiter
        assert len(server.queue) == 4 < server.config.max_queue

    def test_noisy_tenant_cannot_starve_quiet_tenants_p99(self, server, rng):
        deadline_s = 10.0
        noisy = [
            server.submit(
                rng.standard_normal((N,) * 3), kernel="g", tenant="noisy"
            )
            for _ in range(12)
        ]
        quiet = [
            server.submit(
                rng.standard_normal((N,) * 3),
                kernel="g",
                tenant="quiet",
                timeout_s=deadline_s,
            )
            for _ in range(3)
        ]
        server.drain()
        # every admitted request (both tenants) completed...
        assert all(h.exception() is None for h in quiet)
        assert sum(1 for h in noisy if h.exception() is None) == 4
        # ...and the quiet tenant's worst-case latency beat its deadline
        lat = server.snapshot()["histograms"]["tenant.quiet.latency.e2e_s"]
        assert lat["count"] == 3
        assert lat["max"] < deadline_s

    def test_default_tenant_quota_bounds_unnamed_tenants(self, rng):
        server = ConvolutionServer(
            ServerConfig(
                n=N, k=K, max_queue=16, default_tenant_quota=2
            ),
            clock=ManualClock(),
        )
        server.register_kernel("g", GaussianKernel(n=N, sigma=1.5).spectrum())
        handles = [
            server.submit(rng.standard_normal((N,) * 3), kernel="g")
            for _ in range(3)
        ]
        assert [h.state for h in handles] == [
            RequestState.QUEUED,
            RequestState.QUEUED,
            RequestState.REJECTED,
        ]

    def test_retries_are_exempt_from_quota(self, rng):
        calls = {"n": 0}

        def fail_once(batch, attempt):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("injected worker failure")

        server = ConvolutionServer(
            ServerConfig(
                n=N, k=K, tenant_quotas={"t": 1}, max_retries=1,
                retry_backoff_s=0.01,
            ),
            clock=ManualClock(),
            fault_hook=fail_once,
        )
        server.register_kernel("g", GaussianKernel(n=N, sigma=1.5).spectrum())
        handle = server.submit(
            rng.standard_normal((N,) * 3), kernel="g", tenant="t"
        )
        server.drain()
        # the retry re-entered a full-at-quota tenant bucket without shedding
        assert handle.exception() is None
        assert handle.state is RequestState.DONE


class TestQueueAccounting:
    def test_tenant_depths_track_push_pop_and_drain(self, server, rng):
        for tenant in ("a", "a", "b"):
            server.submit(
                rng.standard_normal((N,) * 3), kernel="g", tenant=tenant
            )
        assert server.queue.tenant_depth("a") == 2
        assert server.queue.tenant_depth("b") == 1
        assert server.queue.tenant_depth(DEFAULT_TENANT) == 0
        server.drain()
        assert server.queue.tenant_depth("a") == 0
        assert server.queue.tenant_depth("b") == 0

    def test_quota_lookup_falls_back_to_default(self):
        q = BoundedRequestQueue(
            8, tenant_quotas={"a": 4}, default_tenant_quota=2
        )
        assert q.tenant_quota("a") == 4
        assert q.tenant_quota("b") == 2
        assert BoundedRequestQueue(8).tenant_quota("b") is None

    def test_drain_all_empties_queue_and_depths(self, server, rng):
        for tenant in ("a", "a", "b"):
            server.submit(
                rng.standard_normal((N,) * 3), kernel="g", tenant=tenant
            )
        drained = server.queue.drain_all()
        assert len(drained) == 3
        assert len(server.queue) == 0
        assert server.queue.tenant_depth("a") == 0
        assert server.queue.tenant_depth("b") == 0


class TestLoadgenTenantMix:
    def test_mix_is_deterministic_and_weighted(self):
        tenants = (
            TenantSpec("heavy", weight=3.0, timeout_s=5.0),
            TenantSpec("light", weight=1.0),
        )
        spec = LoadSpec(
            n=N, k=K, num_requests=40, policy="flat:4", tenants=tenants
        )
        first = [item["tenant"] for item in spec.requests()]
        second = [item["tenant"] for item in spec.requests()]
        assert first == second
        counts = {t: first.count(t) for t in ("heavy", "light")}
        assert counts["heavy"] > counts["light"] > 0
        timeouts = {
            item["tenant"]: item["timeout_s"] for item in spec.requests()
        }
        assert timeouts == {"heavy": 5.0, "light": None}

    def test_tenant_mix_never_changes_the_fields(self):
        plain = LoadSpec(n=N, k=K, num_requests=4, policy="flat:4")
        mixed = LoadSpec(
            n=N, k=K, num_requests=4, policy="flat:4",
            tenants=(TenantSpec("a"), TenantSpec("b")),
        )
        for a, b in zip(plain.requests(), mixed.requests()):
            np.testing.assert_array_equal(a["field"], b["field"])
            assert a["kernel"] == b["kernel"]
        assert all(
            item["tenant"] == DEFAULT_TENANT for item in plain.requests()
        )

    def test_zero_weight_tenant_rejected(self):
        with pytest.raises(ConfigurationError, match="weight > 0"):
            TenantSpec("t", weight=0.0)
