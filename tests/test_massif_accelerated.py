"""Tests for the Eyre-Milton accelerated scheme and Mandel notation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import SamplingPolicy
from repro.kernels.green_massif import LameParameters
from repro.massif.accelerated import (
    EyreMiltonSolver,
    reference_lame_eyre_milton,
)
from repro.massif.elasticity import (
    StiffnessField,
    isotropic_stiffness,
    mandel_from_tensor,
    tensor_from_mandel,
)
from repro.massif.microstructure import sphere_inclusion
from repro.massif.solver import MassifSolver


def _composite(n=16, contrast=20.0):
    c0 = isotropic_stiffness(LameParameters.from_young_poisson(1.0, 0.3))
    c1 = isotropic_stiffness(LameParameters.from_young_poisson(contrast, 0.3))
    return StiffnessField(sphere_inclusion(n, radius=5), [c0, c1])


@pytest.fixture
def macro():
    e = np.zeros((3, 3))
    e[0, 0] = 0.01
    return e


class TestMandelNotation:
    def test_roundtrip(self):
        c = isotropic_stiffness(LameParameters(lam=1.3, mu=0.7))
        np.testing.assert_allclose(tensor_from_mandel(mandel_from_tensor(c)), c)

    def test_contraction_is_matvec(self, rng):
        """Mandel matrix times Mandel vector == tensor double contraction."""
        from repro.massif.elasticity import VOIGT_PAIRS, _MANDEL_WEIGHTS

        c = isotropic_stiffness(LameParameters(lam=1.0, mu=0.5))
        eps = rng.standard_normal((3, 3))
        eps = 0.5 * (eps + eps.T)
        sigma_tensor = np.einsum("ijkl,kl->ij", c, eps)
        eps_m = np.array(
            [eps[i, j] * w for (i, j), w in zip(VOIGT_PAIRS, _MANDEL_WEIGHTS)]
        )
        sigma_m = mandel_from_tensor(c) @ eps_m
        expected = np.array(
            [sigma_tensor[i, j] * w for (i, j), w in zip(VOIGT_PAIRS, _MANDEL_WEIGHTS)]
        )
        np.testing.assert_allclose(sigma_m, expected, atol=1e-12)

    def test_composition_is_matmul(self):
        """(A:B) in tensor form == Mandel(A) @ Mandel(B): the isometry the
        accelerated scheme's inverse relies on."""
        a = isotropic_stiffness(LameParameters(lam=1.0, mu=0.5))
        b = isotropic_stiffness(LameParameters(lam=0.3, mu=1.2))
        ab_tensor = np.einsum("ijmn,mnkl->ijkl", a, b)
        np.testing.assert_allclose(
            mandel_from_tensor(ab_tensor),
            mandel_from_tensor(a) @ mandel_from_tensor(b),
            atol=1e-12,
        )


class TestEyreMilton:
    def test_same_solution_as_basic(self, macro):
        sf = _composite(contrast=20.0)
        basic = MassifSolver(sf, tol=1e-6, max_iter=2000).solve(macro)
        em = EyreMiltonSolver(
            sf, reference=reference_lame_eyre_milton(sf), tol=1e-6, max_iter=2000
        ).solve(macro)
        err = np.linalg.norm(em.strain - basic.strain) / np.linalg.norm(basic.strain)
        assert err < 1e-3
        assert em.effective_stress()[0, 0] == pytest.approx(
            basic.effective_stress()[0, 0], rel=1e-4
        )

    @pytest.mark.parametrize("contrast", [100.0, 1000.0])
    def test_accelerates_at_high_contrast(self, macro, contrast):
        sf = _composite(contrast=contrast)
        basic = MassifSolver(sf, tol=1e-4, max_iter=20000).solve(macro)
        em = EyreMiltonSolver(
            sf, reference=reference_lame_eyre_milton(sf), tol=1e-4, max_iter=20000
        ).solve(macro)
        assert em.iterations < basic.iterations / 2

    def test_homogeneous_immediate(self, macro):
        c0 = isotropic_stiffness(LameParameters.from_young_poisson(1.0, 0.3))
        sf = StiffnessField(np.zeros((8, 8, 8), dtype=np.int64), [c0])
        rep = EyreMiltonSolver(sf, tol=1e-10).solve(macro)
        assert rep.converged
        assert rep.iterations == 0

    def test_mean_strain_preserved(self, macro):
        sf = _composite()
        rep = EyreMiltonSolver(
            sf, reference=reference_lame_eyre_milton(sf), tol=1e-5, max_iter=2000
        ).solve(macro)
        np.testing.assert_allclose(rep.effective_strain(), macro, atol=1e-6)

    def test_geometric_reference(self):
        sf = _composite(contrast=100.0)
        ref = reference_lame_eyre_milton(sf)
        mus = [0.3846153846, 38.46153846]  # mu of E=1 and E=100 at nu=0.3
        assert ref.mu == pytest.approx(np.sqrt(mus[0] * mus[1]), rel=1e-6)

    def test_stall_window_supported(self, macro):
        sf = _composite()
        rep = EyreMiltonSolver(
            sf,
            reference=reference_lame_eyre_milton(sf),
            tol=1e-15,
            max_iter=500,
            stall_window=10,
            raise_on_fail=False,
        ).solve(macro)
        assert rep.stalled or rep.converged


class TestLowCommEyreMilton:
    """The composed solver: acceleration x low-communication convolution."""

    def test_lossless_matches_dense_em(self, macro):
        from repro.massif.accelerated import LowCommEyreMiltonSolver

        sf = _composite(contrast=100.0)
        ref = reference_lame_eyre_milton(sf)
        dense = EyreMiltonSolver(
            sf, reference=ref, tol=1e-4, max_iter=2000
        ).solve(macro)
        lowcomm = LowCommEyreMiltonSolver(
            sf,
            k=8,
            policy=SamplingPolicy.flat_rate(1),
            reference=ref,
            tol=1e-4,
            max_iter=2000,
            batch=256,
        ).solve(macro)
        assert lowcomm.iterations == dense.iterations
        np.testing.assert_allclose(lowcomm.strain, dense.strain, atol=1e-8)

    def test_lossy_homogenized_close(self, macro):
        from repro.massif.accelerated import LowCommEyreMiltonSolver

        sf = _composite(contrast=100.0)
        ref = reference_lame_eyre_milton(sf)
        basic = MassifSolver(sf, tol=1e-4, max_iter=5000).solve(macro)
        lossy = LowCommEyreMiltonSolver(
            sf,
            k=8,
            policy=SamplingPolicy.flat_rate(2),
            reference=ref,
            tol=1e-4,
            max_iter=300,
            batch=256,
            stall_window=10,
            raise_on_fail=False,
        ).solve(macro)
        eff_b = basic.effective_stress()[0, 0]
        eff_l = lossy.effective_stress()[0, 0]
        assert abs(eff_l - eff_b) / abs(eff_b) < 0.05

    def test_fewer_iterations_than_lowcomm_basic(self, macro):
        from repro.massif.accelerated import LowCommEyreMiltonSolver
        from repro.massif.lowcomm_solver import LowCommMassifSolver

        sf = _composite(contrast=100.0)
        common = dict(
            k=8,
            policy=SamplingPolicy.flat_rate(1),
            tol=1e-4,
            max_iter=5000,
            batch=256,
        )
        fast = LowCommEyreMiltonSolver(
            sf, reference=reference_lame_eyre_milton(sf), **common
        ).solve(macro)
        slow = LowCommMassifSolver(sf, **common).solve(macro)
        assert fast.iterations < slow.iterations / 2
