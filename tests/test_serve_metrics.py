"""Unit tests for the serving-layer metrics primitives."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_stage_timings,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_high_water_mark(self):
        g = Gauge()
        g.set(3)
        g.inc(-2)
        assert g.value == 1.0
        assert g.max_value == 3.0


class TestHistogram:
    def test_bucketing_and_stats(self):
        h = Histogram(buckets=[1.0, 10.0])
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert h.count == 4
        assert h.sum == pytest.approx(106.5)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(106.5 / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=[2.0, 1.0])


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_is_json_roundtrippable(self):
        reg = MetricsRegistry()
        reg.counter("done").inc(2)
        reg.gauge("depth").set(7)
        reg.observe("lat", 0.3)
        snap = json.loads(reg.to_json())
        assert snap["counters"]["done"] == 2
        assert snap["gauges"]["depth"]["value"] == 7.0
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        snap = reg.snapshot()
        reg.counter("x").inc()
        assert snap["counters"]["x"] == 1


def test_merge_stage_timings():
    a = {"histograms": {"stage.exec_s": {"sum": 1.0}}}
    b = {"histograms": {"stage.exec_s": {"sum": 2.5}, "stage.wait_s": {"sum": 0.5}}}
    totals = merge_stage_timings([a, b])
    assert totals == {"stage.exec_s": 3.5, "stage.wait_s": 0.5}
