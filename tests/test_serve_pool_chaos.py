"""Dist-backed serving under chaos: rank death mid-load, zero fallout.

The acceptance bar for routing :class:`ConvolutionServer` batches onto a
standing :class:`RankPool`, as tests:

- a 4-rank pool-backed server returns results bitwise identical to a
  single-process :class:`~repro.core.batch.BatchConvolver` on the same
  stream;
- a rank killed mid-batch under live load (via the
  :mod:`tests.chaos` fault schedule) costs **zero failed requests**: the
  pool's checkpoint handoff seats a replacement, the roster generation
  bumps, and the recovered results are still bitwise identical;
- warm steady state shows ``plan_misses == 0`` on the job reports;
- every job's wire bytes land in the per-tenant attribution visible in
  the serve metrics snapshot.

Pools ride the same private ``file://`` rendezvous pattern as the pool
runtime tests — nothing is shared between tests.
"""

import numpy as np
import pytest

from tests.chaos import FaultSchedule, KillAt
from repro.core.batch import BatchConvolver
from repro.kernels.gaussian import GaussianKernel
from repro.pool.pool import RankPool
from repro.serve import ConvolutionServer, PoolBackend, ServerConfig
from repro.serve.loadgen import parse_policy

#: the calibrated reference shape shared with the pool/dist tests
N, K, RANKS = 32, 8, 4
POLICY = parse_policy("flat:2")


@pytest.fixture
def pool(tmp_path):
    """A connected 4-rank pool on a private rendezvous."""
    pool = RankPool(f"file://{tmp_path}")
    pool.spawn(RANKS)
    pool.connect(RANKS, timeout_s=30.0)
    yield pool
    pool.down()


def make_server(pool, job_hook=None):
    backend = PoolBackend({"p0": pool}, job_hook=job_hook)
    server = ConvolutionServer(
        ServerConfig(
            n=N, k=K, max_batch_size=4, max_wait_s=0.01, default_policy=POLICY
        ),
        executor=backend,
    )
    return server, backend


def kernels():
    return {
        "g0": GaussianKernel(n=N, sigma=2.0).spectrum(),
        "g1": GaussianKernel(n=N, sigma=2.5).spectrum(),
    }


def stream(rng, count):
    names = sorted(kernels())
    return [
        (rng.standard_normal((N,) * 3), names[i % len(names)])
        for i in range(count)
    ]


def local_reference(requests):
    """The single-process BatchConvolver results, grouped per kernel."""
    specs = kernels()
    out = [None] * len(requests)
    for name in specs:
        idx = [i for i, (_, kname) in enumerate(requests) if kname == name]
        if not idx:
            continue
        engine = BatchConvolver(N, K, specs[name], POLICY)
        batch = engine.run([requests[i][0] for i in idx])
        for i, result in zip(idx, batch.results):
            out[i] = result.approx
    return out


class TestKillMidLoad:
    def test_rank_death_mid_batch_zero_failed_requests(self, pool, rng):
        schedule = FaultSchedule([KillAt(rank=2, job_index=3)])
        server, backend = make_server(pool, job_hook=schedule.job_hook)
        for name, spectrum in kernels().items():
            server.register_kernel(name, spectrum)
        requests = stream(rng, 6)
        handles = [server.submit(f, kernel=kname) for f, kname in requests]
        server.drain()

        # the kill really happened...
        assert schedule.fired and schedule.fired[0][0] == 3
        # ...and cost nothing: every request completed
        assert all(h.exception() is None for h in handles)
        snap = server.snapshot()
        assert snap["counters"].get("requests_failed", 0) == 0
        assert snap["counters"]["requests_completed"] == len(requests)

        # failover evidence: recovery ran, the dead rank was re-seated,
        # and the roster generation moved past the bootstrap generation
        assert snap["counters"]["pool.recoveries"] == 1
        recovered = [r for r in backend.job_reports if r.recovered]
        assert len(recovered) == 1
        # survivors abort their exchange when they see the death, so they
        # land in failed_ranks too — but only the dead rank is re-seated
        assert 2 in recovered[0].failed_ranks
        assert recovered[0].replaced_ranks == [2]
        assert not recovered[0].driver_fallback
        assert recovered[0].generation > 1
        assert pool.roster.size == RANKS

        # the one property that makes failover *transparent*: results are
        # bitwise identical to the single-process batch path
        expected = local_reference(requests)
        for handle, want in zip(handles, expected):
            np.testing.assert_array_equal(handle.result().approx, want)

    def test_pool_keeps_serving_after_recovery(self, pool, rng):
        schedule = FaultSchedule.single(job_index=1, rank=0)
        server, backend = make_server(pool, job_hook=schedule.job_hook)
        server.register_kernel("g0", kernels()["g0"])
        first = server.submit(rng.standard_normal((N,) * 3), kernel="g0")
        server.drain()
        assert first.exception() is None and schedule.fired

        # post-recovery jobs run on the re-formed mesh without another
        # recovery and without tripping the generation fence
        second = server.submit(rng.standard_normal((N,) * 3), kernel="g0")
        server.drain()
        assert second.exception() is None
        snap = server.snapshot()
        assert snap["counters"]["pool.recoveries"] == 1
        assert snap["counters"].get("pool.generation_bumps", 0) == 0
        # the recovered job's report already carries the bumped
        # generation; the follow-up job runs at that same generation
        first_report, last_report = backend.job_reports[0], backend.job_reports[-1]
        assert first_report.recovered and first_report.generation > 1
        assert last_report.generation == first_report.generation
        assert not last_report.recovered and last_report.warm


class TestWarmSteadyState:
    def test_plan_misses_zero_once_warm(self, pool, rng):
        server, backend = make_server(pool)
        server.register_kernel("g0", kernels()["g0"])
        fields = [rng.standard_normal((N,) * 3) for _ in range(4)]
        for field in fields:
            server.submit(field, kernel="g0")
            server.drain()
        reports = list(backend.job_reports)
        assert len(reports) == 4
        # first job may build plans; the warm steady state must not
        assert all(r.plan_misses == 0 for r in reports[1:])
        assert all(r.warm for r in reports[1:])
        assert server.snapshot()["backend"]["last_job"]["plan_misses"] == 0


class TestTenantAttribution:
    def test_per_tenant_wire_bytes_in_snapshot(self, pool, rng):
        server, backend = make_server(pool)
        server.register_kernel("g0", kernels()["g0"])
        plan = ["acme", "acme", "umbra"]
        handles = [
            server.submit(rng.standard_normal((N,) * 3), kernel="g0", tenant=t)
            for t in plan
        ]
        server.drain()
        assert all(h.exception() is None for h in handles)

        tenants = server.snapshot()["backend"]["tenants"]
        assert sorted(tenants) == ["acme", "umbra"]
        assert tenants["acme"]["jobs"] == 2
        assert tenants["umbra"]["jobs"] == 1
        assert tenants["acme"]["sent_bytes"] > tenants["umbra"]["sent_bytes"] > 0
        # attribution is exact per job: tenant buckets sum to the total
        total = sum(
            r.wire_totals.get("sent.exchange.bytes", 0)
            for r in backend.job_reports
        )
        by_tenant = sum(
            d["counters"].get("sent.exchange.bytes", 0)
            for d in tenants.values()
        )
        assert by_tenant == total > 0
        # the job metadata round-trips the tenant stamp
        assert [r.metadata["tenant"] for r in backend.job_reports] == plan
