"""Failure-injection tests: OOM mid-pipeline, rank death mid-iteration,
misconfigured plans — the paths a production run would hit."""

import numpy as np
import pytest

from repro.cluster.comm import SimulatedComm
from repro.cluster.memory import MemoryTracker
from repro.cluster.mpi_shim import RankSet, spmd_phase
from repro.core.pipeline import LowCommConvolution3D
from repro.core.policy import SamplingPolicy
from repro.errors import DeviceMemoryError, RankFailure
from repro.kernels.gaussian import GaussianKernel


class TestOOMMidPipeline:
    def test_pipeline_oom_is_clean(self):
        """An OOM mid-run surfaces as DeviceMemoryError and releases all
        simulated allocations (no leak across the failure)."""
        n, k = 16, 8
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        # capacity passes the sub-cube but fails at the slab
        mt = MemoryTracker(capacity_bytes=16 * n * n * k - 1)
        pipe = LowCommConvolution3D(
            n, k, spec, SamplingPolicy.flat_rate(2), batch=64, memory=mt
        )
        field = np.zeros((n, n, n))
        field[:k, :k, :k] = 1.0
        with pytest.raises(DeviceMemoryError):
            pipe.run_serial(field)
        assert mt.current_bytes == 0

    def test_capacity_boundary_is_tight(self):
        """One byte of extra capacity flips OOM to success (exactness of the
        allocation accounting)."""
        n, k = 16, 4
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        field = np.zeros((n, n, n))
        field[:k, :k, :k] = 1.0

        def peak_with_unbounded():
            mt = MemoryTracker()
            pipe = LowCommConvolution3D(
                n, k, spec, SamplingPolicy.flat_rate(2), batch=64, memory=mt
            )
            pipe.run_serial(field)
            return mt.peak_bytes

        peak = peak_with_unbounded()
        mt_ok = MemoryTracker(capacity_bytes=peak)
        LowCommConvolution3D(
            n, k, spec, SamplingPolicy.flat_rate(2), batch=64, memory=mt_ok
        ).run_serial(field)
        mt_fail = MemoryTracker(capacity_bytes=peak - 1)
        with pytest.raises(DeviceMemoryError):
            LowCommConvolution3D(
                n, k, spec, SamplingPolicy.flat_rate(2), batch=64, memory=mt_fail
            ).run_serial(field)


class TestRankDeath:
    def test_dead_rank_aborts_distributed_run(self):
        n, k = 16, 4
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        field = np.zeros((n, n, n))
        field[:k, :k, :k] = 1.0
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        comm = SimulatedComm(4)
        comm.kill_rank(2)
        with pytest.raises(RankFailure):
            pipe.run_distributed(field, comm)

    def test_death_between_phases_detected(self):
        ranks = RankSet(3)
        spmd_phase(ranks, lambda s: s.data.setdefault("n", 0))
        ranks.fail_rank(0)
        with pytest.raises(RankFailure):
            spmd_phase(ranks, lambda s: s["n"])

    def test_traditional_conv_also_aborts(self, rng):
        from repro.baselines.traditional_conv import TraditionalDistributedConvolution

        n = 8
        comm = SimulatedComm(4)
        comm.kill_rank(1)
        conv = TraditionalDistributedConvolution(n, comm, mode="pencil")
        spec = GaussianKernel(n=n, sigma=1.0).spectrum()
        with pytest.raises(RankFailure):
            conv.convolve(rng.standard_normal((n, n, n)), spec)
