"""Transport tests: loopback + TCP semantics, ledger accounting, faults.

The satellite fault matrix: a truncated frame and a dropped message are
*transport* errors (the peer may be alive); an abrupt stream end is a
*rank* failure.  Both transports must agree on that mapping.
"""

import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.dist.ledger import (
    CATEGORY_CONTROL,
    CATEGORY_EXCHANGE,
    WireLedger,
    merge_wire_snapshots,
)
from repro.dist.tcp import TcpTransport
from repro.dist.transport import LocalFabric
from repro.dist.wire import HEADER_BYTES, Frame, FrameKind, encode_frame
from repro.errors import CommunicationError, RankFailure, TransportError


class TestLocalTransport:
    def test_send_recv_roundtrip(self):
        fabric = LocalFabric(2)
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.send(1, Frame(FrameKind.DATA, 0, tag=5, payload=b"payload"))
        frame = b.recv(timeout=1.0)
        assert frame.src == 0 and frame.tag == 5 and frame.payload == b"payload"

    def test_ledger_counts_full_wire_bytes(self):
        fabric = LocalFabric(2)
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        frame = Frame(FrameKind.DATA, 0, 0, b"12345")
        a.send(1, frame, CATEGORY_EXCHANGE)
        b.recv(timeout=1.0, category=CATEGORY_EXCHANGE)
        assert a.ledger.bytes_sent(CATEGORY_EXCHANGE) == HEADER_BYTES + 5
        assert b.ledger.bytes_received(CATEGORY_EXCHANGE) == HEADER_BYTES + 5
        assert a.ledger.frames_sent() == 1

    def test_recv_timeout_is_transport_error(self):
        fabric = LocalFabric(2)
        b = fabric.endpoint(1)
        with pytest.raises(TransportError, match="timed out"):
            b.recv(timeout=0.05)

    def test_dropped_message_times_out(self):
        fabric = LocalFabric(2)
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        fabric.drop_next(0, 1)
        a.send(1, Frame(FrameKind.DATA, 0, 0, b"lost"))
        with pytest.raises(TransportError, match="timed out"):
            b.recv(timeout=0.05)
        # only the next message is dropped; traffic then flows again
        a.send(1, Frame(FrameKind.DATA, 0, 0, b"kept"))
        assert b.recv(timeout=1.0).payload == b"kept"

    def test_killed_rank_raises_rank_failure(self):
        fabric = LocalFabric(2)
        b = fabric.endpoint(1)
        fabric.kill(0)
        with pytest.raises(RankFailure, match="rank 0"):
            b.recv(timeout=1.0)

    def test_dead_rank_cannot_send(self):
        fabric = LocalFabric(2)
        a = fabric.endpoint(0)
        fabric.kill(0)
        with pytest.raises(RankFailure):
            a.send(1, Frame(FrameKind.DATA, 0, 0))

    def test_bye_then_eof_is_graceful(self):
        fabric = LocalFabric(2)
        a, b = fabric.endpoint(0), fabric.endpoint(1)
        a.close()  # sends BYE
        assert b.recv(timeout=1.0).kind == FrameKind.BYE
        fabric.kill(0)
        # EOF after BYE is not a crash; the receiver just keeps waiting
        with pytest.raises(TransportError, match="timed out"):
            b.recv(timeout=0.05)

    def test_exchange_all_pairs(self):
        fabric = LocalFabric(3)
        endpoints = [fabric.endpoint(r) for r in range(3)]

        def run(rank):
            peers = {r for r in range(3) if r != rank}
            outgoing = {
                dst: Frame(FrameKind.DATA, rank, 7, f"from{rank}".encode())
                for dst in peers
            }
            return endpoints[rank].exchange(outgoing, peers, timeout=5.0)

        with ThreadPoolExecutor(max_workers=3) as pool:
            got = list(pool.map(run, range(3)))
        for rank, result in enumerate(got):
            assert set(result) == {r for r in range(3) if r != rank}
            for src, frame in result.items():
                assert frame.payload == f"from{src}".encode()

    def test_self_send_rejected(self):
        fabric = LocalFabric(2)
        a = fabric.endpoint(0)
        with pytest.raises(CommunicationError, match="itself"):
            a.send(0, Frame(FrameKind.DATA, 0, 0))

    def test_peer_out_of_range(self):
        fabric = LocalFabric(2)
        a = fabric.endpoint(0)
        with pytest.raises(CommunicationError, match="out of range"):
            a.send(5, Frame(FrameKind.DATA, 0, 0))


def _tcp_mesh(size):
    """Build a live full-mesh of TcpTransports on localhost."""
    listeners = []
    ports = []
    for _ in range(size):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        sock.listen(size)
        listeners.append(sock)
        ports.append(sock.getsockname()[1])
    with ThreadPoolExecutor(max_workers=size) as pool:
        futures = [
            pool.submit(TcpTransport, rank, size, ports, listeners[rank])
            for rank in range(size)
        ]
        return [f.result(timeout=20) for f in futures]


@pytest.fixture
def tcp_pair():
    transports = _tcp_mesh(2)
    yield transports
    for t in transports:
        t.close()


class TestTcpTransport:
    def test_send_recv_over_socket(self, tcp_pair):
        a, b = tcp_pair
        a.send(1, Frame(FrameKind.DATA, 0, tag=3, payload=b"over tcp"))
        frame = b.recv(timeout=5.0)
        assert frame.src == 0 and frame.payload == b"over tcp"

    def test_ledger_counts_hello_handshake(self, tcp_pair):
        a, b = tcp_pair
        # mesh construction exchanged one HELLO (rank 1 dialed rank 0)
        assert b.ledger.bytes_sent(CATEGORY_CONTROL) == HEADER_BYTES
        assert a.ledger.bytes_received(CATEGORY_CONTROL) == HEADER_BYTES

    def test_recv_timeout(self, tcp_pair):
        _a, b = tcp_pair
        with pytest.raises(TransportError, match="timed out"):
            b.recv(timeout=0.05)

    def test_truncated_frame_is_transport_error(self, tcp_pair):
        a, b = tcp_pair
        # write 60% of a frame straight to the socket, then slam it shut
        data = encode_frame(Frame(FrameKind.DATA, 0, 0, b"x" * 100))
        raw = a._peers[1]
        raw.sendall(data[: len(data) * 6 // 10])
        raw.close()
        with pytest.raises(TransportError, match="truncated at offset"):
            b.recv(timeout=5.0)

    def test_abrupt_close_is_rank_failure(self, tcp_pair):
        a, b = tcp_pair
        a._peers[1].close()  # no BYE: simulates a crash
        with pytest.raises(RankFailure, match="rank 0"):
            b.recv(timeout=5.0)

    def test_bye_then_close_is_graceful(self, tcp_pair):
        a, b = tcp_pair
        a.close()
        assert b.recv(timeout=5.0).kind == FrameKind.BYE
        with pytest.raises(TransportError, match="timed out"):
            b.recv(timeout=0.05)

    def test_exchange_large_payloads_no_deadlock(self):
        # bigger than typical kernel socket buffers: the threaded-send
        # exchange must not deadlock on everyone sending first
        transports = _tcp_mesh(3)
        try:
            payload = b"\xab" * (1 << 20)

            def run(rank):
                peers = {r for r in range(3) if r != rank}
                outgoing = {
                    dst: Frame(FrameKind.DATA, rank, 1, payload) for dst in peers
                }
                return transports[rank].exchange(outgoing, peers, timeout=30.0)

            with ThreadPoolExecutor(max_workers=3) as pool:
                results = list(pool.map(run, range(3)))
            for rank, got in enumerate(results):
                assert all(f.payload == payload for f in got.values())
                assert set(got) == {r for r in range(3) if r != rank}
        finally:
            for t in transports:
                t.close()

    def test_killed_peer_mid_exchange(self):
        transports = _tcp_mesh(2)
        try:
            a, b = transports
            # rank 0 dies without sending its exchange payload
            for sock in a._peers.values():
                sock.close()
            peers = {0}
            with pytest.raises(RankFailure):
                b.exchange(
                    {0: Frame(FrameKind.DATA, 1, 1, b"mine")}, peers, timeout=5.0
                )
        finally:
            for t in transports:
                t.close()


class TestWireLedger:
    def test_category_totals(self):
        ledger = WireLedger()
        ledger.record_send("exchange", 100)
        ledger.record_send("exchange", 50)
        ledger.record_send("bcast", 10)
        ledger.record_recv("exchange", 100)
        assert ledger.bytes_sent("exchange") == 150
        assert ledger.bytes_sent() == 160
        assert ledger.bytes_received() == 100
        assert ledger.frames_sent("exchange") == 2

    def test_snapshot_shape_matches_serve_metrics(self):
        ledger = WireLedger()
        ledger.record_send("data", 42)
        snap = ledger.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["sent.data.bytes"] == 42
        assert snap["histograms"]["frame.bytes"]["count"] == 1

    def test_merge_wire_snapshots(self):
        a, b = WireLedger(), WireLedger()
        a.record_send("exchange", 100)
        b.record_send("exchange", 200)
        b.record_recv("exchange", 100)
        totals = merge_wire_snapshots([a.snapshot(), b.snapshot()])
        assert totals["sent.exchange.bytes"] == 300
        assert totals["recv.exchange.bytes"] == 100


def test_local_fabric_rejects_bad_size():
    with pytest.raises(CommunicationError):
        LocalFabric(0)


def test_heartbeats_are_skipped_by_exchange():
    fabric = LocalFabric(2)
    a, b = fabric.endpoint(0), fabric.endpoint(1)
    a.send(1, Frame(FrameKind.HEARTBEAT, 0, 0))
    a.send(1, Frame(FrameKind.DATA, 0, 1, b"real"))

    done = {}

    def run_b():
        done["got"] = b.exchange({0: Frame(FrameKind.DATA, 1, 1, b"back")}, {0}, 5.0)

    t = threading.Thread(target=run_b)
    t.start()
    t.join(timeout=10)
    assert not t.is_alive()
    assert done["got"][0].payload == b"real"
