"""Tests for rectangular ("irregular") sub-domain support (paper §3.1)."""

import numpy as np
import pytest

from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_convolve
from repro.errors import ConfigurationError, ShapeError
from repro.kernels.gaussian import GaussianKernel
from repro.octree.interpolate import reconstruct_dense
from repro.octree.sampling import BoxRatePolicy, build_box_pattern
from repro.util.arrays import embed_subcube, l2_relative_error


@pytest.fixture
def setup(rng):
    n = 32
    spec = GaussianKernel(n=n, sigma=2.0).spectrum()
    shape = (8, 16, 4)
    corner = (4, 8, 12)
    sub = rng.standard_normal(shape)
    return n, spec, shape, corner, sub


class TestBoxRatePolicy:
    def test_band_unit_is_max_edge(self):
        pol = BoxRatePolicy(n=32, shape=(8, 16, 4), corner=(0, 0, 0))
        assert pol.band_unit == 16

    def test_inside_box_dense(self):
        pol = BoxRatePolicy(n=32, shape=(8, 16, 4), corner=(4, 8, 12))
        assert pol.base_rate(0) == 1

    def test_region_rate_brackets_bands(self):
        pol = BoxRatePolicy(n=32, shape=(8, 8, 8), corner=(0, 0, 0))
        rmin, rmax = pol.region_rate((0, 0, 0), (32, 32, 32))
        assert rmin == 1
        assert rmax >= pol.r_mid

    def test_box_outside_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            BoxRatePolicy(n=16, shape=(8, 8, 8), corner=(12, 0, 0))


class TestBoxPattern:
    def test_partition_covers_grid(self, setup):
        n, _spec, shape, corner, _sub = setup
        pat = build_box_pattern(n, shape, corner, min_cell=2)
        assert sum(c.size**3 for c in pat.cells) == n**3

    def test_box_region_dense(self, setup):
        n, _spec, shape, corner, _sub = setup
        pat = build_box_pattern(n, shape, corner, min_cell=1)
        coords = pat.sample_coords
        inside = np.ones(len(coords), dtype=bool)
        for d in range(3):
            inside &= (coords[:, d] >= corner[d]) & (
                coords[:, d] < corner[d] + shape[d]
            )
        assert inside.sum() == np.prod(shape)

    def test_compresses(self, setup):
        n, _spec, shape, corner, _sub = setup
        pat = build_box_pattern(n, shape, corner, r_near=2, r_mid=4, r_far=8)
        assert pat.compression_ratio > 3


class TestRectangularConvolution:
    def test_lossless_exact(self, setup):
        n, spec, shape, corner, sub = setup
        pat = build_box_pattern(n, shape, corner, r_near=1, r_mid=1, r_far=1)
        lc = LocalConvolution(n, spec, SamplingPolicy(), batch=256)
        cf = lc.convolve(sub, corner, pattern=pat)
        exact = reference_convolve(embed_subcube(sub, (n,) * 3, corner), spec)
        np.testing.assert_allclose(reconstruct_dense(cf), exact, atol=1e-10)

    def test_lossy_error_bounded(self, setup):
        n, spec, shape, corner, sub = setup
        pat = build_box_pattern(n, shape, corner, r_near=2, r_mid=4, r_far=8,
                                min_cell=2)
        lc = LocalConvolution(n, spec, SamplingPolicy(), batch=256)
        cf = lc.convolve(sub, corner, pattern=pat)
        exact = reference_convolve(embed_subcube(sub, (n,) * 3, corner), spec)
        assert l2_relative_error(reconstruct_dense(cf), exact) < 0.15

    def test_rect_without_pattern_rejected(self, setup):
        n, spec, _shape, corner, sub = setup
        lc = LocalConvolution(n, spec, SamplingPolicy())
        with pytest.raises(ConfigurationError, match="rectangular"):
            lc.convolve(sub, corner)

    def test_rect_outside_grid_rejected(self, setup):
        n, spec, shape, _corner, sub = setup
        lc = LocalConvolution(n, spec, SamplingPolicy())
        with pytest.raises(ShapeError):
            lc.convolve(sub, (28, 0, 0))

    def test_mixed_boxes_accumulate(self, setup, rng):
        """Two disjoint boxes of different shapes sum to the full result."""
        from repro.core.accumulate import accumulate_global

        n, spec, *_ = setup
        boxes = [((8, 4, 8), (0, 0, 0)), ((4, 8, 4), (16, 16, 16))]
        field = np.zeros((n, n, n))
        fields = []
        lc = LocalConvolution(n, spec, SamplingPolicy(), batch=256)
        for shape, corner in boxes:
            block = rng.standard_normal(shape)
            field[tuple(slice(c, c + s) for c, s in zip(corner, shape))] = block
            pat = build_box_pattern(n, shape, corner, r_near=1, r_mid=1, r_far=1)
            fields.append(lc.convolve(block, corner, pattern=pat))
        total = accumulate_global(fields)
        exact = reference_convolve(field, spec)
        np.testing.assert_allclose(total, exact, atol=1e-9)
