"""Tests for the Yukawa kernel, homogenization, and the distributed runner."""

import numpy as np
import pytest

from repro.cluster.device import V100_16GB, V100_32GB
from repro.core.distributed_runner import (
    DistributedLowCommConvolution,
    compute_amplification,
    min_feasible_ranks_traditional,
    parallel_efficiency,
    strong_scaling_curve,
)
from repro.core.policy import SamplingPolicy
from repro.core.pipeline import LowCommConvolution3D
from repro.core.reference import reference_convolve
from repro.errors import ConfigurationError
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.green_massif import LameParameters
from repro.kernels.properties import spectrum_is_real
from repro.kernels.yukawa import YukawaKernel
from repro.massif.elasticity import StiffnessField, isotropic_stiffness
from repro.massif.homogenization import (
    bounds_respected,
    homogenize,
    reuss_bound,
    voigt_bound,
)
from repro.massif.microstructure import sphere_inclusion
from repro.massif.solver import MassifSolver
from repro.util.arrays import l2_relative_error


class TestYukawaKernel:
    def test_spectrum_real_positive_bounded(self):
        spec = YukawaKernel(n=16, kappa=4.0).spectrum()
        assert (spec > 0).all()
        assert spec.max() == spec[0, 0, 0] == pytest.approx(1.0 / 16.0)

    def test_spatial_decays_monotonically(self):
        g = YukawaKernel(n=32, kappa=8.0).spatial()
        assert g[0, 0, 0] > g[2, 0, 0] > g[4, 0, 0] > g[8, 0, 0] > 0

    def test_faster_decay_than_poisson(self):
        from repro.kernels.poisson import PoissonKernel

        yk = YukawaKernel(n=32, kappa=12.0).spatial()
        pk = PoissonKernel(n=32).spatial()
        # normalized tail ratio: screened kernel has relatively less tail
        assert yk[8, 0, 0] / yk[1, 0, 0] < pk[8, 0, 0] / pk[1, 0, 0]

    def test_solve_single_mode(self):
        n = 16
        yk = YukawaKernel(n=n, kappa=3.0, length=1.0)
        x = np.arange(n) / n
        X = np.meshgrid(x, x, x, indexing="ij")[0]
        f = np.cos(2 * np.pi * X)
        u = yk.solve(f)
        np.testing.assert_allclose(u, f / ((2 * np.pi) ** 2 + 9.0), atol=1e-12)

    def test_real_spectrum_property(self):
        assert spectrum_is_real(YukawaKernel(n=16, kappa=4.0).spatial())

    def test_pipeline_compatibility(self):
        """Yukawa solves run through the compressed pipeline."""
        n, k = 32, 8
        yk = YukawaKernel(n=n, kappa=10.0)
        f = np.zeros((n, n, n))
        f[8:16, 8:16, 8:16] = 1.0
        pipe = LowCommConvolution3D(
            n, k, yk.spectrum(), SamplingPolicy.flat_rate(2), batch=256
        )
        res = pipe.run_serial(f)
        assert l2_relative_error(res.approx, yk.solve(f)) < 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            YukawaKernel(n=16, kappa=0.0)
        with pytest.raises(ConfigurationError):
            YukawaKernel(n=16, kappa=1.0).solve(np.zeros((4, 4, 4)))

    def test_decay_length(self):
        assert YukawaKernel(n=16, kappa=5.0).decay_length() == pytest.approx(0.2)


@pytest.fixture(scope="module")
def two_phase_12():
    c0 = isotropic_stiffness(LameParameters.from_young_poisson(1.0, 0.3))
    c1 = isotropic_stiffness(LameParameters.from_young_poisson(4.0, 0.3))
    return StiffnessField(sphere_inclusion(12, radius=4), [c0, c1])


@pytest.fixture(scope="module")
def homogenized(two_phase_12):
    solver = MassifSolver(two_phase_12, tol=1e-4, max_iter=300)
    return homogenize(solver)


class TestHomogenization:
    def test_effective_tensor_symmetric(self, homogenized):
        assert homogenized.is_symmetric

    def test_between_voigt_reuss_bounds(self, homogenized, two_phase_12):
        assert bounds_respected(homogenized.c_eff_voigt, two_phase_12, tol=1e-3)

    def test_stiffer_than_matrix(self, homogenized):
        matrix_c11 = isotropic_stiffness(
            LameParameters.from_young_poisson(1.0, 0.3)
        )[0, 0, 0, 0]
        assert homogenized.c_eff_voigt[0, 0] > matrix_c11

    def test_homogeneous_material_recovers_exactly(self):
        c0 = isotropic_stiffness(LameParameters.from_young_poisson(2.0, 0.25))
        sf = StiffnessField(np.zeros((8, 8, 8), dtype=np.int64), [c0])
        res = homogenize(MassifSolver(sf, tol=1e-8))
        np.testing.assert_allclose(res.c_eff_voigt, voigt_bound(sf), atol=1e-8)
        assert all(i == 0 for i in res.iterations)

    def test_cubic_symmetry_of_centered_sphere(self, homogenized):
        c = homogenized.c_eff_voigt
        assert c[0, 0] == pytest.approx(c[1, 1], rel=0.02)
        assert c[3, 3] == pytest.approx(c[4, 4], rel=0.02)

    def test_bounds_ordering(self, two_phase_12):
        v = voigt_bound(two_phase_12)
        r = reuss_bound(two_phase_12)
        assert np.linalg.eigvalsh(v - r).min() >= -1e-9

    def test_amplitude_validation(self, two_phase_12):
        with pytest.raises(ConfigurationError):
            homogenize(MassifSolver(two_phase_12), amplitude=0.0)


class TestDistributedRunner:
    @pytest.fixture(scope="class")
    def setup(self):
        n, k = 16, 4
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        field = np.zeros((n, n, n))
        field[4:12, 4:12, 4:12] = 1.0
        runner = DistributedLowCommConvolution(
            n, k, spec, SamplingPolicy.flat_rate(2), batch=64
        )
        return runner, field, spec

    def test_result_correct(self, setup):
        runner, field, spec = setup
        rep = runner.run(field, num_ranks=4)
        exact = reference_convolve(field, spec)
        # tiny k=4 sub-domains leave a proportionally larger interpolated
        # shell; this test checks distributed correctness, not accuracy
        assert l2_relative_error(rep.approx, exact) < 0.1

    def test_matches_serial_pipeline_exactly(self, setup):
        runner, field, _ = setup
        rep = runner.run(field, num_ranks=4)
        serial = runner.pipeline.run_serial(field)
        np.testing.assert_allclose(rep.approx, serial.approx, atol=1e-12)

    def test_zero_alltoalls(self, setup):
        runner, field, _ = setup
        assert runner.run(field, 4).alltoall_rounds == 0

    def test_makespan_improves_with_ranks(self, setup):
        runner, field, _ = setup
        m1 = runner.run(field, 1).makespan_s
        m4 = runner.run(field, 4).makespan_s
        assert m4 < m1

    def test_bad_rank_count(self, setup):
        runner, field, _ = setup
        with pytest.raises(ConfigurationError):
            runner.run(field, 0)


class TestScalingModels:
    def test_ours_scales_linearly(self):
        pts = strong_scaling_curve(1024, 128, 8, [1, 8, 64])
        eff_ours, _ = parallel_efficiency(pts)
        assert eff_ours > 0.9

    def test_traditional_saturates(self):
        pts = strong_scaling_curve(1024, 128, 8, [64, 16384])
        _, eff_trad = parallel_efficiency(pts)
        assert eff_trad < 0.9

    def test_compute_amplification_formula(self):
        assert compute_amplification(1024, 128) == pytest.approx(512 * 2 / 3)
        assert compute_amplification(1024, 512) < compute_amplification(1024, 128)

    def test_min_feasible_ranks(self):
        assert min_feasible_ranks_traditional(2048, V100_32GB) >= 8
        assert min_feasible_ranks_traditional(256, V100_32GB) == 1
        assert min_feasible_ranks_traditional(2048, V100_16GB) >= (
            min_feasible_ranks_traditional(2048, V100_32GB)
        )

    def test_efficiency_needs_two_points(self):
        pts = strong_scaling_curve(256, 64, 4, [4])
        with pytest.raises(ConfigurationError):
            parallel_efficiency(pts)
