"""CLI contract tests: exit codes and usable error messages.

The CLI promises: 0 on success, 2 on bad arguments/configuration, with a
one-line message on stderr rather than a traceback.  Also smoke-tests the
``serve-bench`` command on a tiny configuration.
"""

import json

import pytest

from repro.cli import main


class TestExitCodes:
    def test_bad_experiment_name_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["not-a-thing"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_pipeline_k_not_dividing_n_exits_2_with_message(self, capsys):
        rc = main(["pipeline", "--n", "16", "--k", "5"])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")
        assert "divide" in captured.err

    def test_pipeline_negative_n_exits_2_with_message(self, capsys):
        rc = main(["pipeline", "--n", "-4"])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")

    def test_serve_bench_bad_policy_exits_2(self, capsys, tmp_path):
        rc = main([
            "serve-bench", "--n", "16", "--k", "4", "--requests", "2",
            "--policy", "bogus", "--output", str(tmp_path / "x.json"),
        ])
        captured = capsys.readouterr()
        assert rc == 2
        assert "policy spec" in captured.err

    def test_pipeline_happy_path_exits_0(self, capsys):
        rc = main(["pipeline", "--n", "16", "--k", "4"])
        assert rc == 0
        assert "pipeline run" in capsys.readouterr().out


class TestServeBenchSmoke:
    def test_tiny_serve_bench_writes_report(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        rc = main([
            "serve-bench",
            "--n", "32", "--k", "8",
            "--requests", "4",
            "--policy", "flat:4",
            "--max-batch-size", "4",
            "--max-wait", "0.01",
            "--output", str(out),
        ])
        assert rc == 0
        assert "serve-bench" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["bench"] == "serve"
        assert report["n"] == 32 and report["k"] == 8
        assert report["cpu_count"] >= 1
        assert report["workers_used"] >= 1
        assert report["serve"]["bitwise_identical"] is True
        assert report["serve"]["requests"] == 4
        assert set(report["results"]) == {"naive", "batched"}
        for entry in report["results"].values():
            assert entry["median_s"] > 0
            assert entry["throughput_rps"] > 0
