"""The standing pool end to end: warm mesh, elastic membership, recovery.

The acceptance bar, as tests:

- a job on a rendezvous-bootstrapped TCP mesh is bitwise identical to
  ``run_serial`` and its per-job wire accounting stays within 1% of the
  Eq 6 prediction;
- a warm resubmission reuses processes, transports, and FFT plans
  (``plan_misses == 0``);
- a rank killed mid-job is replaced in-mesh via the checkpoint handoff
  and the recovered result is still bitwise identical;
- late joiners grow the roster and the next job spreads across them;
- a job stamped with a dead generation is fenced, never executed.

Each test stands up its own pool over a private ``file://`` rendezvous
and tears it down, so tests never share agent processes.
"""

import numpy as np
import pytest

from repro.dist.launcher import default_spectrum
from repro.dist.worker import DistConfig, build_pipeline, composite_field
from repro.errors import ConfigurationError, PoolError
from repro.pool.jobs import PoolJob
from repro.pool.pool import RankPool

#: the calibrated reference shape shared with the dist acceptance tests
REFERENCE = dict(n=32, k=8, sigma=2.0, policy="flat:2")


def _config(ranks, **overrides):
    return DistConfig(
        num_ranks=ranks, transport="tcp", **{**REFERENCE, **overrides}
    )


def _serial(config, field, spectrum):
    return build_pipeline(config, spectrum).run_serial(field).approx


@pytest.fixture
def pool_at(tmp_path):
    """Factory: a connected pool of N agents, torn down afterwards."""
    pools = []

    def connect(ranks):
        pool = RankPool(f"file://{tmp_path}")
        pools.append(pool)
        pool.spawn(ranks)
        pool.connect(ranks, timeout_s=30.0)
        return pool

    yield connect
    for pool in pools:
        pool.down()


class TestWarmSubmission:
    def test_job_is_bitwise_and_wire_accounted_then_warm(self, pool_at):
        pool = pool_at(4)
        config = _config(4)
        field = composite_field(config.n, config.seed)
        spectrum = default_spectrum(config)

        cold = pool.submit(config, field=field, spectrum=spectrum)
        assert np.array_equal(cold.approx, _serial(config, field, spectrum))
        assert not cold.warm and not cold.recovered
        assert cold.predicted_value_bytes > 0
        assert cold.wire_over_model == pytest.approx(1.0, abs=0.01)

        warm = pool.submit(config, field=field, spectrum=spectrum)
        assert np.array_equal(warm.approx, _serial(config, field, spectrum))
        assert warm.warm
        # the whole point of the pool: plans persist across jobs
        assert warm.plan_misses == 0
        assert warm.plan_hits > 0
        assert warm.wire_over_model == pytest.approx(1.0, abs=0.01)
        assert warm.job_id != cold.job_id

    def test_submit_rejects_wrong_pool_size(self, pool_at):
        pool = pool_at(2)
        with pytest.raises(ConfigurationError, match="pool has 2 members"):
            pool.submit(_config(4))


class TestElasticMembership:
    def test_late_joiners_grow_the_next_job(self, pool_at):
        pool = pool_at(2)
        generation = pool.roster.generation
        config2 = _config(2)
        field = composite_field(config2.n, config2.seed)
        spectrum = default_spectrum(config2)
        assert np.array_equal(
            pool.submit(config2, field=field, spectrum=spectrum).approx,
            _serial(config2, field, spectrum),
        )

        pool.spawn(2)
        roster = pool.grow(2, timeout_s=30.0)
        assert roster.size == 4
        assert roster.generation > generation

        config4 = _config(4)
        report = pool.submit(config4, field=field, spectrum=spectrum)
        assert np.array_equal(report.approx, _serial(config4, field, spectrum))
        assert report.generation == roster.generation

    def test_stale_generation_job_is_fenced_not_executed(self, pool_at):
        pool = pool_at(2)
        config = _config(2)
        stale = PoolJob(
            job_id=99,
            generation=pool.roster.generation + 5,
            config=config,
            field=composite_field(config.n, config.seed),
            spectrum=default_spectrum(config),
        )
        pool._conns[0].send(("job", stale))
        kind, rank, message, is_stale = pool._recv_control(0, timeout_s=10.0)
        assert (kind, rank, is_stale) == ("job-error", 0, True)
        assert "generation" in message
        # the fence left the mesh intact: a correctly-stamped job still runs
        report = pool.submit(config)
        assert report.generation == pool.roster.generation


class TestRankDeathRecovery:
    def test_checkpoint_handoff_to_replacement_is_bitwise(self, pool_at):
        pool = pool_at(4)
        # rank 2 owns sub-domains at this shape, so the injected death
        # loses real work that the replacement must redo
        config = _config(4, fail_rank=2, fail_stage="before_checkpoint")
        field = composite_field(config.n, config.seed)
        spectrum = default_spectrum(config)

        report = pool.submit(config, field=field, spectrum=spectrum)
        assert report.recovered
        assert not report.driver_fallback
        # rank 2 died; survivors abort their exchange when they see the
        # death, so they land in failed_ranks too — but only rank 2 was
        # actually replaced
        assert 2 in report.failed_ranks
        assert np.array_equal(report.approx, _serial(config, field, spectrum))
        # the retry's wire is audited against Eq 6 *minus* the restored
        # sub-domains, so the 1% bar holds through recovery too
        assert report.wire_over_model == pytest.approx(1.0, abs=0.01)
        assert pool.roster.generation > 1

        # the replaced mesh is a first-class pool: the next job is clean
        clean = pool.submit(_config(4), field=field, spectrum=spectrum)
        assert not clean.recovered
        assert np.array_equal(clean.approx, _serial(config, field, spectrum))

    def test_recover_false_surfaces_the_failure(self, pool_at):
        pool = pool_at(2)
        config = _config(2, fail_rank=1, fail_stage="before_checkpoint")
        with pytest.raises(PoolError, match="failed on ranks"):
            pool.submit(config, recover=False)
