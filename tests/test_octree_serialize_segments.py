"""Zero-copy codec tests: segments, arena decode, and format edge cases.

The data-plane refactor's codec-level contracts:

- :func:`serialize_segments` emits ``[header, metadata, sizes, values]``
  views that *alias* the field's buffers (joining them reproduces
  :func:`serialize_compressed` exactly);
- float64 encode/decode copies nothing — the
  :mod:`repro.util.copytrack` ledger stays at zero — while float32 does
  exactly one counted cast per direction with no float64 intermediate;
- :func:`deserialize_into` decodes into caller-owned storage with one
  counted copy;
- edge cases decode or fail loudly: empty fields, single cells, ragged
  cell sizes, legacy headerless payloads (with a DeprecationWarning),
  and truncation at every segment boundary names the right offset.
"""

import struct

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.octree.cell import METADATA_INTS_PER_CELL, OctreeCell
from repro.octree.compress import CompressedField
from repro.octree.sampling import SamplingPattern, build_flat_pattern
from repro.octree.serialize import (
    deserialize_compressed,
    deserialize_into,
    serialize_compressed,
    serialize_segments,
)
from repro.util import copytrack

_HEADER_BYTES = 9 * 8


@pytest.fixture(autouse=True)
def _fresh_ledger():
    copytrack.reset()
    yield
    copytrack.reset()


@pytest.fixture
def field(rng):
    pat = build_flat_pattern(16, 4, (4, 8, 0), r=2)
    dense = rng.standard_normal((16, 16, 16))
    return CompressedField.from_dense(dense, pat)


def _make(cells, n=16, k=4):
    pattern = SamplingPattern(
        n=n, cells=cells, subdomain_corner=(0, 0, 0), subdomain_size=k
    )
    values = np.arange(pattern.sample_count, dtype=np.float64) + 0.5
    return CompressedField(pattern=pattern, values=values)


def _section_bounds(field):
    """Byte offsets of the v2 payload's section boundaries."""
    num_cells = field.pattern.num_cells
    meta_end = _HEADER_BYTES + num_cells * METADATA_INTS_PER_CELL * 4
    sizes_end = meta_end + num_cells * 4
    values_end = sizes_end + field.pattern.sample_count * 8
    return meta_end, sizes_end, values_end


class TestSegments:
    def test_join_matches_contiguous_encoder(self, field):
        segments = serialize_segments(field)
        assert len(segments) == 4
        assert b"".join(segments) == serialize_compressed(field)

    def test_values_segment_aliases_field_buffer(self, field):
        segments = serialize_segments(field)
        values_view = np.frombuffer(segments[3], dtype=np.float64)
        assert np.shares_memory(values_view, field.values)

    def test_metadata_segment_aliases_pattern_cache(self, field):
        segments = serialize_segments(field)
        meta_view = np.frombuffer(segments[1], dtype=np.int32)
        assert np.shares_memory(meta_view, field.pattern.metadata())

    def test_float64_encode_copies_nothing(self, field):
        serialize_segments(field)
        assert copytrack.ledger().bytes_copied() == 0

    def test_float32_encode_is_one_counted_cast(self, field):
        serialize_segments(field, precision="float32")
        led = copytrack.ledger()
        m = field.pattern.sample_count
        assert led.bytes_copied(copytrack.SITE_ENCODE_CAST) == 4 * m
        assert led.events(copytrack.SITE_ENCODE_CAST) == 1
        # the cast is the only copy — no float64 intermediate exists
        assert led.bytes_copied() == 4 * m

    def test_contiguous_encoder_join_is_counted(self, field):
        payload = serialize_compressed(field)
        led = copytrack.ledger()
        assert led.bytes_copied(copytrack.SITE_SERIALIZE_JOIN) == len(payload)

    def test_bad_precision_rejected(self, field):
        with pytest.raises(ConfigurationError, match="precision"):
            serialize_segments(field, precision="float16")


class TestZeroCopyDecode:
    def test_float64_values_alias_the_payload(self, field):
        payload = bytearray(serialize_compressed(field))
        back = deserialize_compressed(payload)
        _meta_end, sizes_end, _values_end = _section_bounds(field)
        struct.pack_into("<d", payload, sizes_end, 1234.5)
        assert back.values[0] == 1234.5  # no copy was made

    def test_float64_decode_copies_nothing(self, field):
        payload = serialize_compressed(field)
        copytrack.reset()
        deserialize_compressed(payload)
        assert copytrack.ledger().bytes_copied() == 0

    def test_float32_decode_is_one_counted_promotion(self, field):
        payload = serialize_compressed(field, precision="float32")
        copytrack.reset()
        back = deserialize_compressed(payload)
        led = copytrack.ledger()
        assert back.values.dtype == np.float64
        assert led.bytes_copied(copytrack.SITE_DECODE_CAST) == back.values.nbytes
        assert led.bytes_copied() == back.values.nbytes

    def test_memoryview_payload_accepted(self, field):
        payload = serialize_compressed(field)
        back = deserialize_compressed(memoryview(payload))
        np.testing.assert_array_equal(back.values, field.values)


class TestDeserializeInto:
    def test_decodes_into_caller_storage(self, field):
        payload = serialize_compressed(field)
        m = field.pattern.sample_count
        arena = np.empty(m + 7, dtype=np.float64)
        back = deserialize_into(payload, arena)
        assert np.shares_memory(back.values, arena)
        assert back.values.size == m
        np.testing.assert_array_equal(back.values, field.values)

    def test_copy_is_counted_at_arena_site(self, field):
        payload = serialize_compressed(field)
        copytrack.reset()
        back = deserialize_into(payload, np.empty(field.pattern.sample_count))
        led = copytrack.ledger()
        assert (
            led.bytes_copied(copytrack.SITE_DESERIALIZE_INTO)
            == back.values.nbytes
        )

    def test_float32_payload_casts_into_float64_storage(self, field):
        payload = serialize_compressed(field, precision="float32")
        back = deserialize_into(
            payload, np.empty(field.pattern.sample_count, dtype=np.float64)
        )
        np.testing.assert_allclose(back.values, field.values, rtol=1e-6)

    def test_undersized_output_rejected(self, field):
        payload = serialize_compressed(field)
        small = np.empty(field.pattern.sample_count - 1, dtype=np.float64)
        with pytest.raises(ConfigurationError, match="cannot hold"):
            deserialize_into(payload, small)

    def test_wrong_dtype_rejected(self, field):
        payload = serialize_compressed(field)
        out = np.empty(field.pattern.sample_count, dtype=np.float32)
        with pytest.raises(ConfigurationError, match="float64"):
            deserialize_into(payload, out)

    def test_readonly_output_rejected(self, field):
        payload = serialize_compressed(field)
        out = np.empty(field.pattern.sample_count, dtype=np.float64)
        out.setflags(write=False)
        with pytest.raises(ConfigurationError, match="writable"):
            deserialize_into(payload, out)

    def test_non_1d_output_rejected(self, field):
        payload = serialize_compressed(field)
        out = np.empty((4, 4), dtype=np.float64)
        with pytest.raises(ConfigurationError, match="1-D"):
            deserialize_into(payload, out)


class TestEdgeCases:
    def test_empty_field_roundtrips(self):
        field = _make([])
        payload = serialize_compressed(field)
        assert len(payload) == _HEADER_BYTES  # header only
        back = deserialize_compressed(payload)
        assert back.pattern.num_cells == 0
        assert back.values.size == 0

    def test_single_cell_roundtrips(self):
        field = _make([OctreeCell((0, 0, 0), 4, 2)])
        back = deserialize_compressed(serialize_compressed(field))
        assert back.pattern.cells == field.pattern.cells
        np.testing.assert_array_equal(back.values, field.values)

    def test_ragged_cell_sizes_roundtrip(self):
        cells = [
            OctreeCell((0, 0, 0), 4, 2),
            OctreeCell((4, 0, 0), 2, 1),
            OctreeCell((6, 0, 0), 1, 1),
        ]
        field = _make(cells)
        back = deserialize_compressed(serialize_compressed(field))
        assert back.pattern.cells == cells
        np.testing.assert_array_equal(back.values, field.values)

    def test_legacy_headerless_payload_warns_and_decodes(self, field):
        pattern = field.pattern
        header = np.array(
            [
                pattern.n,
                pattern.subdomain_size,
                *pattern.subdomain_corner,
                pattern.num_cells,
            ],
            dtype=np.int64,
        )
        legacy = (
            header.tobytes()
            + pattern.metadata().tobytes()
            + pattern.cell_sizes().tobytes()
            + np.ascontiguousarray(field.values).tobytes()
        )
        with pytest.warns(DeprecationWarning, match="legacy headerless"):
            back = deserialize_compressed(legacy)
        np.testing.assert_array_equal(back.values, field.values)
        assert back.pattern.cells == pattern.cells


class TestTruncationOffsets:
    """Cutting the payload at every segment boundary fails with the
    offset of the section that went missing."""

    def test_mid_header(self, field):
        payload = serialize_compressed(field)
        with pytest.raises(ConfigurationError, match="shorter than"):
            deserialize_compressed(payload[: _HEADER_BYTES // 2])

    def test_header_only_no_metadata(self, field):
        payload = serialize_compressed(field)
        with pytest.raises(
            ConfigurationError, match=rf"offset {_HEADER_BYTES}"
        ):
            deserialize_compressed(payload[:_HEADER_BYTES])

    def test_mid_metadata(self, field):
        payload = serialize_compressed(field)
        meta_end, _sizes_end, _values_end = _section_bounds(field)
        with pytest.raises(
            ConfigurationError, match=rf"offset {_HEADER_BYTES}"
        ):
            deserialize_compressed(payload[: meta_end - 2])

    def test_mid_sizes(self, field):
        payload = serialize_compressed(field)
        meta_end, sizes_end, _values_end = _section_bounds(field)
        with pytest.raises(
            ConfigurationError, match=rf"offset {_HEADER_BYTES}"
        ):
            deserialize_compressed(payload[: sizes_end - 2])

    def test_values_missing_entirely(self, field):
        payload = serialize_compressed(field)
        _meta_end, sizes_end, _values_end = _section_bounds(field)
        with pytest.raises(
            ConfigurationError,
            match=rf"0 values at offset {sizes_end}",
        ):
            deserialize_compressed(payload[:sizes_end])

    def test_mid_value(self, field):
        payload = serialize_compressed(field)
        _meta_end, sizes_end, _values_end = _section_bounds(field)
        with pytest.raises(
            ConfigurationError,
            match=rf"offset {sizes_end}.*not a whole number",
        ):
            deserialize_compressed(payload[:-3])

    def test_one_value_short(self, field):
        payload = serialize_compressed(field)
        m = field.pattern.sample_count
        _meta_end, sizes_end, _values_end = _section_bounds(field)
        with pytest.raises(
            ConfigurationError,
            match=rf"{m - 1} values at offset {sizes_end}.*requires {m}",
        ):
            deserialize_compressed(payload[:-8])

    def test_trailing_garbage_rejected(self, field):
        payload = serialize_compressed(field) + b"\x00" * 8
        with pytest.raises(ConfigurationError, match="requires"):
            deserialize_compressed(payload)


class TestFloat32PrecisionBound:
    def test_relative_error_pinned_near_1e_7(self, field):
        back = deserialize_compressed(
            serialize_compressed(field, precision="float32")
        )
        nonzero = np.abs(field.values) > 1e-12
        rel = np.abs(back.values[nonzero] - field.values[nonzero]) / np.abs(
            field.values[nonzero]
        )
        # float32 round-to-nearest: per-element relative error <= 2^-24,
        # so the observed maximum sits just under ~1.2e-7 and is nonzero
        assert 0 < rel.max() <= 1.2e-7

    def test_l2_relative_error_under_1e_7(self, field):
        back = deserialize_compressed(
            serialize_compressed(field, precision="float32")
        )
        err = np.linalg.norm(back.values - field.values) / np.linalg.norm(
            field.values
        )
        assert 0 < err < 1e-7
