"""Tests for the analysis package: tables, reports, and experiment drivers."""

import numpy as np
import pytest

from repro.analysis.report import ComparisonRow, ExperimentReport
from repro.analysis.tables import format_table
from repro.analysis import experiments as ex
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_title(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_scientific_for_tiny(self):
        out = format_table(["v"], [[1e-9]])
        assert "e-09" in out


class TestExperimentReport:
    def test_ratio(self):
        row = ComparisonRow("x", paper=2.0, measured=3.0)
        assert row.ratio == pytest.approx(1.5)

    def test_max_deviation(self):
        rep = ExperimentReport("T", "test")
        rep.add("a", 10.0, 11.0)
        rep.add("b", 10.0, 8.0)
        assert rep.max_ratio_deviation() == pytest.approx(0.2)

    def test_monotonic_agreement(self):
        rep = ExperimentReport("T", "test")
        rep.add("a", 1.0, 10.0)
        rep.add("b", 2.0, 20.0)
        rep.add("c", 3.0, 30.0)
        assert rep.monotonic_agreement()
        rep.add("d", 4.0, 5.0)
        assert not rep.monotonic_agreement()

    def test_render_contains_rows(self):
        rep = ExperimentReport("E0", "demo", notes="hello")
        rep.add("metric", 1.0, 1.1)
        out = rep.render()
        assert "E0" in out and "metric" in out and "hello" in out


class TestExperimentDrivers:
    def test_table1_exact(self):
        rep = ex.run_table1_memory()
        assert rep.max_ratio_deviation() < 1e-6

    def test_table2_matches_paper(self):
        rep = ex.run_table2_allowable_k()
        assert rep.max_ratio_deviation() < 1e-6  # every allowable k matches

    def test_table3_speedup_shape(self):
        rows, rep = ex.run_table3_speedup()
        speedups = [r.speedup for r in rows]
        # monotone growth in N at fixed r=4 rows (first three)
        assert speedups[0] < speedups[1] < speedups[2]
        # final speedup in the paper's 20-30x band
        assert 18 < speedups[-1] < 32
        assert rep.max_ratio_deviation() < 0.5

    def test_table3_measured_error_within_band(self):
        err = ex.measure_table3_error(n=64, k=16, r=8, sigma=2.0)
        assert err <= 0.03

    def test_flat_ablation_worse(self):
        banded = ex.measure_table3_error(n=64, k=16, r=8, sigma=2.0)
        flat = ex.measure_table3_error(n=64, k=16, r=8, sigma=2.0, flat=True)
        assert flat > banded

    def test_table4_close(self):
        rep = ex.run_table4_memory()
        assert rep.max_ratio_deviation() < 0.07

    def test_fig1_rounds(self):
        res = ex.run_fig1_comm_rounds(n=16, k=4, p=4, r=2)
        assert res.traditional_rounds == 4
        assert res.ours_rounds == 0
        assert res.results_match

    def test_fig3_octree(self):
        res = ex.run_fig3_octree()  # the paper's 32^3-in-128^3 configuration
        assert res.compression_ratio > 8
        assert 1 in res.rate_histogram  # dense sub-domain
        assert res.metadata_bytes == 20 * res.num_cells
        assert len(res.ascii_slice.splitlines()) > 10

    def test_comm_sweep_advantage(self):
        rows = ex.run_comm_time_sweep()
        for _p, t_fft, t_ours, adv in rows:
            assert t_ours < t_fft
            assert adv > 100  # Eq 6 wins by orders of magnitude at this config

    def test_batch_sweep_shrinks_with_n(self):
        rep = ex.run_batch_sweep()
        gains = [r.measured for r in rep.rows]
        assert gains[0] > gains[1] > gains[2]

    def test_dense_gpu_ceiling_8x(self):
        plain, ours = ex.dense_gpu_ceiling()
        assert plain == 1024
        assert ours == 2048  # 8x the points

    def test_massif_convergence_small(self):
        res = ex.run_massif_convergence(n=8, k=4, r=2, max_iter=100)
        assert res.effective_stress_error < 0.05
        assert res.alg1_iterations > 0
