"""Tests for batch multi-instance convolution."""

import numpy as np
import pytest

from repro.cluster.device import V100_16GB
from repro.cluster.memory import MemoryTracker
from repro.core.batch import BatchConvolver
from repro.core.pipeline import LowCommConvolution3D
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_convolve
from repro.errors import ConfigurationError, ShapeError
from repro.kernels.gaussian import GaussianKernel
from repro.util.arrays import l2_relative_error


@pytest.fixture
def setup(rng):
    n, k = 16, 4
    spec = GaussianKernel(n=n, sigma=1.2).spectrum()
    fields = []
    for i in range(3):
        f = np.zeros((n, n, n))
        f[i : i + 8, 2 : 10, 4 : 12] = rng.standard_normal((8, 8, 8))
        fields.append(f)
    return n, k, spec, fields


class TestBatchConvolver:
    def test_matches_individual_runs(self, setup):
        n, k, spec, fields = setup
        pol = SamplingPolicy.flat_rate(2)
        batch = BatchConvolver(n, k, spec, pol, batch=64)
        res = batch.run(fields)
        solo = LowCommConvolution3D(n, k, spec, pol, batch=64)
        for field, got in zip(fields, res.results):
            expected = solo.run_serial(field)
            np.testing.assert_allclose(got.approx, expected.approx, atol=1e-12)

    def test_patterns_amortized(self, setup):
        """All instances share one pattern per sub-domain corner."""
        n, k, spec, fields = setup
        batch = BatchConvolver(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        res = batch.run(fields)
        max_corners = (n // k) ** 3
        assert res.patterns_built <= max_corners

    def test_accuracy_each_instance(self, setup):
        n, k, spec, fields = setup
        batch = BatchConvolver(n, k, spec, SamplingPolicy.flat_rate(1), batch=64)
        res = batch.run(fields)
        for field, got in zip(fields, res.results):
            exact = reference_convolve(field, spec)
            assert l2_relative_error(got.approx, exact) < 1e-9

    def test_memory_shared_tracker(self, setup):
        n, k, spec, fields = setup
        mt = MemoryTracker()
        batch = BatchConvolver(
            n, k, spec, SamplingPolicy.flat_rate(2), batch=64, memory=mt
        )
        res = batch.run(fields)
        assert res.peak_memory_bytes > 0
        assert mt.current_bytes == 0

    def test_empty_batch_rejected(self, setup):
        n, k, spec, _ = setup
        batch = BatchConvolver(n, k, spec, SamplingPolicy.flat_rate(2))
        with pytest.raises(ConfigurationError):
            batch.run([])

    def test_wrong_shape_rejected(self, setup):
        n, k, spec, _ = setup
        batch = BatchConvolver(n, k, spec, SamplingPolicy.flat_rate(2))
        with pytest.raises(ShapeError):
            batch.run([np.zeros((8, 8, 8))])


class TestInstancesPerDevice:
    def test_many_small_instances_fit(self):
        """The §5.1 claim: small grids batch densely onto one GPU."""
        n, k = 256, 32
        spec_fn = lambda ix, iy: np.ones((len(ix), n))  # noqa: E731
        batch = BatchConvolver(n, k, spec_fn, SamplingPolicy.flat_rate(8))
        count = batch.instances_per_device(V100_16GB.memory_bytes)
        # dense method: 2 * 16 * n^3 per instance -> only ~32 instances;
        # ours fits strictly more
        dense_count = V100_16GB.memory_bytes // (2 * 16 * n**3)
        assert count > dense_count

    def test_capacity_validation(self):
        batch = BatchConvolver(16, 4, np.zeros((16, 16, 16)))
        with pytest.raises(ConfigurationError):
            batch.instances_per_device(0)
