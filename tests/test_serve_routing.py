"""Consistent-hash routing properties: stability, determinism, remap bounds.

The routing ring decides which standing sub-pool a compatibility key's
batches land on.  Two properties make it safe to operate:

- **determinism** — the assignment is a pure function of (key, member
  set), identical across processes and ring rebuild order, so warm plan
  caches are never flushed by an accident of construction;
- **minimal disruption** — growing N sub-pools to N+1 remaps only ~1/N
  of the key space (every moved key moves *to* the newcomer), and
  removing a sub-pool remaps only the keys it owned.
"""

import pytest

from repro.core.policy import SamplingPolicy
from repro.errors import ConfigurationError
from repro.serve.dist_backend import ConsistentHashRing, compat_key_string


def keyspace(count):
    """A deterministic synthetic key population (compat-key shaped)."""
    return [f"64/16/gauss{i}/flat:4/None/numpy/None" for i in range(count)]


def build_ring(names, replicas=128):
    ring = ConsistentHashRing(replicas)
    for name in names:
        ring.add(name)
    return ring


class TestDeterminism:
    def test_assignment_is_pure_in_key_and_member_set(self):
        keys = keyspace(50)
        a = build_ring(["p0", "p1", "p2"])
        b = build_ring(["p2", "p0", "p1"])  # insertion order must not matter
        assert [a.assign(k) for k in keys] == [b.assign(k) for k in keys]

    def test_pinned_assignments(self):
        # Frozen expectations: a change here means the hash layout moved
        # and every deployed routing decision (and warm plan cache) with it.
        ring = build_ring(["p0", "p1", "p2"])
        pinned = {
            "64/16/gauss0/flat:4/None/numpy/None": ring.assign(
                "64/16/gauss0/flat:4/None/numpy/None"
            ),
        }
        assert pinned  # computed once below, asserted stable across calls
        for key, owner in pinned.items():
            assert ring.assign(key) == owner
            assert build_ring(["p0", "p1", "p2"]).assign(key) == owner

    def test_compat_key_string_uses_policy_spec(self):
        key = (64, 16, "g", SamplingPolicy.flat_rate(4), None, "numpy", None)
        s = compat_key_string(key)
        assert s == "64/16/g/flat:4/None/numpy/None"
        banded = (64, 16, "g", SamplingPolicy(), True, "numpy", 8)
        assert compat_key_string(banded) == "64/16/g/banded/True/numpy/8"

    def test_all_members_receive_keys(self):
        ring = build_ring(["p0", "p1", "p2", "p3"])
        owners = {ring.assign(k) for k in keyspace(400)}
        assert owners == {"p0", "p1", "p2", "p3"}


class TestGrowth:
    @pytest.mark.parametrize("n_pools", [2, 4, 8])
    def test_grow_remaps_about_one_over_n(self, n_pools):
        keys = keyspace(300)
        names = [f"p{i}" for i in range(n_pools)]
        before = {k: build_ring(names).assign(k) for k in keys}
        grown = build_ring(names)
        grown.add("p-new")
        after = {k: grown.assign(k) for k in keys}

        moved = [k for k in keys if before[k] != after[k]]
        expected = len(keys) / (n_pools + 1)
        # ~1/N: a naive modulo router would remap ~N/(N+1) of the keys
        assert len(moved) <= 2.0 * expected
        assert moved  # the newcomer must actually take load
        # minimal disruption: every moved key moved TO the new pool
        assert all(after[k] == "p-new" for k in moved)

    def test_remove_only_remaps_the_removed_pools_keys(self):
        keys = keyspace(300)
        ring = build_ring(["p0", "p1", "p2"])
        before = {k: ring.assign(k) for k in keys}
        ring.remove("p1")
        after = {k: ring.assign(k) for k in keys}
        for k in keys:
            if before[k] == "p1":
                assert after[k] in ("p0", "p2")
            else:
                assert after[k] == before[k]

    def test_grow_then_shrink_round_trips(self):
        keys = keyspace(200)
        ring = build_ring(["p0", "p1"])
        before = {k: ring.assign(k) for k in keys}
        ring.add("p2")
        ring.remove("p2")
        assert {k: ring.assign(k) for k in keys} == before


class TestRingEdges:
    def test_empty_ring_rejects_assign(self):
        with pytest.raises(ConfigurationError, match="empty"):
            ConsistentHashRing().assign("anything")

    def test_duplicate_add_and_missing_remove_rejected(self):
        ring = build_ring(["p0"])
        with pytest.raises(ConfigurationError, match="already contains"):
            ring.add("p0")
        with pytest.raises(ConfigurationError, match="does not contain"):
            ring.remove("p1")

    def test_single_member_owns_everything(self):
        ring = build_ring(["only"])
        assert {ring.assign(k) for k in keyspace(50)} == {"only"}
