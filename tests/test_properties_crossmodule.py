"""Cross-module property-based tests.

Hypothesis-driven invariants that cut across subsystem boundaries: the
end-to-end pipeline as a linear/translation-covariant operator, the
communicator's conservation laws, serialization under fuzzing, and
dimensional-consistency properties of the cost models.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.comm import SimulatedComm
from repro.cluster.cost import (
    comm_time_ours,
    comm_time_traditional_fft,
    pruned_conv_time,
)
from repro.cluster.device import V100_32GB
from repro.cluster.network import Link
from repro.core.local_conv import LocalConvolution
from repro.core.pipeline import LowCommConvolution3D
from repro.core.policy import SamplingPolicy
from repro.errors import ConfigurationError
from repro.kernels.gaussian import GaussianKernel
from repro.octree.compress import CompressedField
from repro.octree.sampling import build_flat_pattern
from repro.octree.serialize import deserialize_compressed, serialize_compressed


N16_SPEC = GaussianKernel(n=16, sigma=1.2).spectrum()


class TestPipelineOperatorProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_linearity(self, seed):
        """run_serial is a linear operator on the input field."""
        r = np.random.default_rng(seed)
        pipe = LowCommConvolution3D(
            16, 4, N16_SPEC, SamplingPolicy.flat_rate(2), batch=64
        )
        a = np.zeros((16, 16, 16))
        b = np.zeros((16, 16, 16))
        a[:8, :8, :8] = r.standard_normal((8, 8, 8))
        b[:8, :8, :8] = r.standard_normal((8, 8, 8))
        out_ab = pipe.run_serial(2.0 * a - 0.5 * b).approx
        out_a = pipe.run_serial(a).approx
        out_b = pipe.run_serial(b).approx
        np.testing.assert_allclose(out_ab, 2.0 * out_a - 0.5 * out_b, atol=1e-9)

    @given(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_translation_covariance_by_subdomain(self, sx, sy, sz):
        """Shifting the input by whole sub-domains shifts the (lossless)
        output identically — the decomposition introduces no positional
        bias."""
        r = np.random.default_rng(0)
        n, k = 16, 4
        pipe = LowCommConvolution3D(
            n, k, N16_SPEC, SamplingPolicy.flat_rate(1), batch=64
        )
        field = np.zeros((n, n, n))
        field[:4, :4, :4] = r.standard_normal((4, 4, 4))
        shift = (sx * k, sy * k, sz * k)
        shifted = np.roll(field, shift, axis=(0, 1, 2))
        out1 = np.roll(pipe.run_serial(field).approx, shift, axis=(0, 1, 2))
        out2 = pipe.run_serial(shifted).approx
        np.testing.assert_allclose(out2, out1, atol=1e-9)

    @given(st.sampled_from([1, 2, 4]))
    @settings(max_examples=6, deadline=None)
    def test_zero_in_zero_out(self, rate):
        pipe = LowCommConvolution3D(
            16, 4, N16_SPEC, SamplingPolicy.flat_rate(rate), batch=64
        )
        out = pipe.run_serial(np.zeros((16, 16, 16)))
        assert np.all(out.approx == 0.0)


class TestCommConservation:
    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_alltoall_conserves_data(self, p, seed):
        """Every element sent is received exactly once (permutation)."""
        r = np.random.default_rng(seed)
        comm = SimulatedComm(p)
        send = [
            [r.standard_normal(3) for _ in range(p)] for _ in range(p)
        ]
        recv = comm.alltoall(send)
        sent_sum = sum(send[i][j].sum() for i in range(p) for j in range(p))
        recv_sum = sum(recv[j][i].sum() for j in range(p) for i in range(p))
        assert sent_sum == pytest.approx(recv_sum)

    @given(st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_allreduce_equals_manual_sum(self, p):
        comm = SimulatedComm(p)
        arrays = [np.full(4, float(i + 1)) for i in range(p)]
        out = comm.allreduce_sum(arrays)
        expected = sum(i + 1 for i in range(p))
        for o in out:
            np.testing.assert_allclose(o, expected)

    @given(st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_ledger_monotone(self, p):
        comm = SimulatedComm(p)
        before = comm.ledger.total_bytes
        comm.allgather([np.zeros(8)] * p)
        mid = comm.ledger.total_bytes
        comm.bcast(np.zeros(8))
        after = comm.ledger.total_bytes
        assert before <= mid <= after


class TestSerializationFuzz:
    @given(st.integers(0, 2**31 - 1), st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_corruption_never_crashes_unsafely(self, seed, flip_at):
        """Any single-byte corruption either raises ConfigurationError or
        decodes to a structurally valid field — never segfaults/ValueError
        from numpy internals."""
        r = np.random.default_rng(seed)
        pat = build_flat_pattern(8, 4, (0, 0, 0), r=2)
        cf = CompressedField.from_dense(r.standard_normal((8, 8, 8)), pat)
        payload = bytearray(serialize_compressed(cf))
        flip_at = flip_at % len(payload)
        payload[flip_at] ^= 0xFF
        try:
            out = deserialize_compressed(bytes(payload))
        except ConfigurationError:
            return  # detected — good
        # decoded: must still be structurally consistent
        assert out.values.size == out.pattern.sample_count


class TestCostModelProperties:
    @given(
        st.sampled_from([256, 512, 1024]),
        st.sampled_from([8, 64, 512]),
    )
    @settings(max_examples=20, deadline=None)
    def test_comm_times_scale_inverse_p(self, n, p):
        link = Link(alpha_s=0.0)
        t1 = comm_time_traditional_fft(n, p, link)
        t2 = comm_time_traditional_fft(n, 2 * p, link)
        assert t2 == pytest.approx(t1 / 2)

    @given(
        st.sampled_from([256, 1024]),
        st.sampled_from([16, 32, 64]),
        st.sampled_from([2, 8, 32]),
    )
    @settings(max_examples=20, deadline=None)
    def test_ours_beats_eq1_when_compressed(self, n, k, r):
        """Eq 6 < Eq 1 whenever compression is real (r >= 2, k << N)."""
        if k >= n:
            return
        link = Link()
        assert comm_time_ours(n, k, r, 64, link) < comm_time_traditional_fft(
            n, 64, link
        )

    @given(st.sampled_from([128, 256, 512]), st.sampled_from([2, 4, 8]))
    @settings(max_examples=15, deadline=None)
    def test_pruned_time_monotone_in_n(self, n, r):
        t1 = pruned_conv_time(V100_32GB, n, 32, r)
        t2 = pruned_conv_time(V100_32GB, 2 * n, 32, r)
        assert t2 > t1


class TestLocalConvAdjointSymmetry:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_symmetric_kernel_commutes_with_reflection(self, seed):
        """For a centrosymmetric kernel, convolving a reflected input equals
        reflecting the convolved input (checked through the full staged
        compressed machinery on the lossless pattern)."""
        r = np.random.default_rng(seed)
        n, k = 16, 4
        lc = LocalConvolution(n, N16_SPEC, SamplingPolicy.flat_rate(1), batch=64)
        sub = r.standard_normal((k, k, k))
        out = lc.convolve_dense_debug(sub, (4, 4, 4))
        # reflect input (about the periodic origin) and corner accordingly
        sub_r = sub[::-1, ::-1, ::-1]
        # block [c, c+k) reflects (mod n) to [n-c-k+1, n-c+1)
        corner_r = tuple((n - 4 - k + 1) % n for _ in range(3))
        out_r = lc.convolve_dense_debug(sub_r, corner_r)
        reflected = np.roll(out[::-1, ::-1, ::-1], 1, axis=(0, 1, 2))
        np.testing.assert_allclose(out_r, reflected, atol=1e-9)
