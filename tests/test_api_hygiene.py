"""API-surface hygiene: docstrings everywhere, exports resolvable, no
import cycles.  A library release gate, enforced as tests."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.util",
    "repro.fft",
    "repro.cluster",
    "repro.octree",
    "repro.kernels",
    "repro.core",
    "repro.massif",
    "repro.baselines",
    "repro.fftx",
    "repro.serve",
    "repro.dist",
    "repro.analysis",
]


def _iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                if info.name == "__main__":
                    continue  # importing it would execute the CLI
                yield importlib.import_module(f"{pkg_name}.{info.name}")


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    """Every public function/class defined in the library is documented."""
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if (getattr(obj, "__module__", "") or "").startswith("repro"):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, (
        f"{module.__name__}: undocumented public items {undocumented}"
    )


@pytest.mark.parametrize(
    "pkg_name",
    [p for p in PACKAGES if p != "repro.util"],
    ids=str,
)
def test_all_exports_resolve(pkg_name):
    """Everything in __all__ is importable from the package."""
    pkg = importlib.import_module(pkg_name)
    for name in getattr(pkg, "__all__", []):
        assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name!r}"


def test_version_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1


def test_errors_hierarchy():
    """All library exceptions derive from ReproError."""
    from repro import errors

    for name, obj in vars(errors).items():
        if inspect.isclass(obj) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name
