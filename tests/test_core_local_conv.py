"""Tests for the local pruned compressed convolution — the pipeline's heart."""

import numpy as np
import pytest

from repro.cluster.memory import MemoryTracker
from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_subdomain_convolve
from repro.errors import DeviceMemoryError, ShapeError
from repro.kernels.gaussian import GaussianKernel
from repro.octree.interpolate import reconstruct_dense
from repro.util.arrays import l2_relative_error


@pytest.fixture
def setup16(rng):
    n, k = 16, 4
    spec = GaussianKernel(n=n, sigma=1.2).spectrum()
    sub = rng.standard_normal((k, k, k))
    return n, k, spec, sub


class TestDenseDebugPath:
    """The uncompressed staged path must be *exact* (machine precision)."""

    @pytest.mark.parametrize("corner", [(0, 0, 0), (4, 8, 12), (12, 12, 12)])
    def test_matches_reference(self, setup16, corner):
        n, k, spec, sub = setup16
        lc = LocalConvolution(n, spec, SamplingPolicy(), batch=16)
        got = lc.convolve_dense_debug(sub, corner)
        ref = reference_subdomain_convolve(sub, corner, spec)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_batch_invariance(self, setup16):
        n, k, spec, sub = setup16
        outs = []
        for batch in (1, 7, 256):
            lc = LocalConvolution(n, spec, SamplingPolicy(), batch=batch)
            outs.append(lc.convolve_dense_debug(sub, (4, 4, 4)))
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-12)
        np.testing.assert_allclose(outs[0], outs[2], atol=1e-12)

    def test_native_backend(self, setup16):
        n, k, spec, sub = setup16
        lc = LocalConvolution(n, spec, SamplingPolicy(), backend="native", batch=16)
        ref = reference_subdomain_convolve(sub, (2, 2, 2), spec)
        np.testing.assert_allclose(
            lc.convolve_dense_debug(sub, (2, 2, 2)), ref, atol=1e-9
        )


class TestCompressedPath:
    def test_samples_exact(self, setup16):
        """Compression is sampling: retained values equal the exact result."""
        n, k, spec, sub = setup16
        lc = LocalConvolution(n, spec, SamplingPolicy.flat_rate(2), batch=32)
        cf = lc.convolve(sub, (4, 4, 4))
        exact = reference_subdomain_convolve(sub, (4, 4, 4), spec)
        coords = cf.pattern.sample_coords
        np.testing.assert_allclose(
            cf.values, exact[coords[:, 0], coords[:, 1], coords[:, 2]], atol=1e-10
        )

    def test_lossless_when_r1(self, setup16):
        n, k, spec, sub = setup16
        lc = LocalConvolution(n, spec, SamplingPolicy.flat_rate(1), batch=32)
        cf = lc.convolve(sub, (8, 4, 0))
        rec = reconstruct_dense(cf)
        ref = reference_subdomain_convolve(sub, (8, 4, 0), spec)
        np.testing.assert_allclose(rec, ref, atol=1e-10)

    def test_error_within_band_for_smooth_input(self):
        n, k = 64, 16
        spec = GaussianKernel(n=n, sigma=2.0).spectrum()
        sub = np.ones((k, k, k))
        pol = SamplingPolicy(r_near=2, r_mid=8, r_far=16, min_cell=2)
        lc = LocalConvolution(n, spec, pol, batch=512)
        cf = lc.convolve(sub, (24, 24, 24))
        rec = reconstruct_dense(cf)
        ref = reference_subdomain_convolve(sub, (24, 24, 24), spec)
        assert l2_relative_error(rec, ref) < 0.03  # the paper's band

    def test_on_the_fly_kernel_callable(self, setup16):
        n, k, spec, sub = setup16

        def pencils(ix, iy):
            return spec[ix, iy, :]

        lc_arr = LocalConvolution(n, spec, SamplingPolicy.flat_rate(2), batch=16)
        lc_fn = LocalConvolution(n, pencils, SamplingPolicy.flat_rate(2), batch=16)
        cf1 = lc_arr.convolve(sub, (4, 4, 4))
        cf2 = lc_fn.convolve(sub, (4, 4, 4))
        np.testing.assert_allclose(cf1.values, cf2.values, atol=1e-12)

    def test_linearity(self, setup16, rng):
        """The compressed convolution operator is linear."""
        n, k, spec, _ = setup16
        lc = LocalConvolution(n, spec, SamplingPolicy.flat_rate(2), batch=32)
        a = rng.standard_normal((k, k, k))
        b = rng.standard_normal((k, k, k))
        ca = lc.convolve(a, (4, 4, 4)).values
        cb = lc.convolve(b, (4, 4, 4)).values
        cab = lc.convolve(2 * a - 3 * b, (4, 4, 4)).values
        np.testing.assert_allclose(cab, 2 * ca - 3 * cb, atol=1e-9)


class TestValidation:
    def test_wrong_kernel_shape(self):
        with pytest.raises(ShapeError):
            LocalConvolution(16, np.zeros((8, 8, 8)), SamplingPolicy())

    def test_non_cubic_needs_explicit_pattern(self, setup16):
        """Rectangular blocks are supported, but only with a caller-supplied
        box pattern (the cubic policy bands do not apply)."""
        from repro.errors import ConfigurationError

        n, k, spec, _ = setup16
        lc = LocalConvolution(n, spec, SamplingPolicy())
        with pytest.raises(ConfigurationError, match="rectangular"):
            lc.convolve(np.zeros((4, 4, 5)), (0, 0, 0))

    def test_subdomain_outside_grid(self, setup16):
        n, k, spec, sub = setup16
        lc = LocalConvolution(n, spec, SamplingPolicy())
        with pytest.raises(ShapeError):
            lc.convolve(sub, (14, 0, 0))


class TestMemoryCharging:
    def test_allocations_charged_and_released(self, setup16):
        n, k, spec, sub = setup16
        mt = MemoryTracker()
        lc = LocalConvolution(
            n, spec, SamplingPolicy.flat_rate(2), batch=16, memory=mt
        )
        lc.convolve(sub, (4, 4, 4))
        assert mt.current_bytes == 0
        assert mt.peak_bytes >= 16 * n * n * k  # at least the slab

    def test_oom_propagates(self, setup16):
        n, k, spec, sub = setup16
        mt = MemoryTracker(capacity_bytes=1024)  # far too small
        lc = LocalConvolution(
            n, spec, SamplingPolicy.flat_rate(2), batch=16, memory=mt
        )
        with pytest.raises(DeviceMemoryError):
            lc.convolve(sub, (4, 4, 4))
        assert mt.current_bytes == 0  # everything released on unwind
