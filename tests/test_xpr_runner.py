"""Runner semantics: pull workers, timeouts, retries, crash isolation.

Every test injects a private :class:`BenchRegistry` with scripted trial
behaviors (hang, crash, flake) — no real benchmarks run here, so the
file exercises exactly the orchestration contract: one bad trial never
takes the sweep down with it.
"""

import threading

import pytest

from repro.errors import ReproError, TransportError
from repro.serve.clock import ManualClock
from repro.xpr.grid import TrialSpec
from repro.xpr.registry import BenchRegistry
from repro.xpr.runner import Runner, TrialOutcome, record_outcomes
from repro.xpr.store import TrajectoryStore


def spec(seed=0, repeats=1, **kwargs):
    return TrialSpec(
        experiment="t", mode="serial", n=32, k=8, seed=seed,
        repeats=repeats, **kwargs,
    )


def registry_with(fn):
    reg = BenchRegistry()
    reg.register("serial")(fn)
    return reg


class TestPullWorkers:
    def test_drains_queue_and_preserves_input_order(self):
        seen = []
        lock = threading.Lock()

        def run(s):
            with lock:
                seen.append(s.seed)
            return {"value": float(s.seed)}

        specs = [spec(seed=i) for i in range(8)]
        outcomes = Runner(registry_with(run), workers=3).run(specs)
        assert sorted(seen) == list(range(8))  # every trial ran once
        # outcomes come back in input order regardless of worker timing
        assert [o.spec.seed for o in outcomes] == list(range(8))
        assert all(o.ok for o in outcomes)

    def test_multiple_workers_actually_share_the_queue(self):
        threads = set()
        barrier = threading.Barrier(2, timeout=5)

        def run(s):
            threads.add(threading.current_thread().name)
            barrier.wait()  # both workers must be in-flight at once
            return {}

        Runner(registry_with(run), workers=2).run([spec(seed=i) for i in (0, 1)])
        assert len(threads) == 2

    def test_rejects_zero_workers(self):
        with pytest.raises(ReproError, match="worker"):
            Runner(BenchRegistry(), workers=0)


class TestCrashIsolation:
    def test_crashing_trial_is_recorded_not_raised(self):
        def run(s):
            if s.seed == 1:
                raise ValueError("scripted crash")
            return {"value": 1.0}

        outcomes = Runner(registry_with(run), workers=2).run(
            [spec(seed=i) for i in range(3)]
        )
        assert [o.status for o in outcomes] == ["ok", "error", "ok"]
        bad = outcomes[1]
        assert bad.error == "ValueError: scripted crash"
        assert bad.attempts == 1  # ValueError is not an infra flake

    def test_failed_trial_does_not_stop_later_trials(self):
        def run(s):
            if s.seed == 0:
                raise RuntimeError("first trial down")
            return {}

        outcomes = Runner(registry_with(run), workers=1).run(
            [spec(seed=i) for i in range(4)]
        )
        assert [o.ok for o in outcomes] == [False, True, True, True]


class TestTimeout:
    def test_hanging_trial_times_out_and_sweep_continues(self):
        release = threading.Event()

        def run(s):
            if s.seed == 1:
                release.wait()  # hang until the test releases it
            return {"value": 1.0}

        try:
            outcomes = Runner(
                registry_with(run), workers=1, timeout_s=0.2
            ).run([spec(seed=i) for i in range(3)])
        finally:
            release.set()
        assert [o.status for o in outcomes] == ["ok", "timeout", "ok"]
        assert "timeout" in (outcomes[1].error or "")
        assert outcomes[1].metrics == {}

    def test_timeout_is_not_retried(self):
        release = threading.Event()

        def run(s):
            release.wait()

        try:
            outcome = Runner(
                registry_with(run), timeout_s=0.1
            ).run_trial(spec())
        finally:
            release.set()
        assert outcome.status == "timeout"
        assert outcome.attempts == 1


class TestInfraRetry:
    def test_transport_error_retried_once_then_succeeds(self):
        calls = []

        def run(s):
            calls.append(1)
            if len(calls) == 1:
                raise TransportError("socket reset")
            return {"value": 7.0}

        outcome = Runner(registry_with(run)).run_trial(spec())
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.metrics["value"] == 7.0

    def test_persistent_infra_error_fails_after_two_attempts(self):
        calls = []

        def run(s):
            calls.append(1)
            raise ConnectionError("network is down")

        outcome = Runner(registry_with(run)).run_trial(spec())
        assert outcome.status == "error"
        assert outcome.attempts == 2
        assert len(calls) == 2
        assert outcome.error == "ConnectionError: network is down"

    def test_retry_restarts_all_repeats(self):
        # The flake lands mid-attempt; the retry must redo every repeat.
        calls = []

        def run(s):
            calls.append(1)
            if len(calls) == 2:
                raise TransportError("flake on second repeat")
            return {"value": float(len(calls))}

        outcome = Runner(registry_with(run)).run_trial(spec(repeats=2))
        assert outcome.ok
        assert outcome.attempts == 2
        assert len(calls) == 4  # 2 from attempt one + 2 from attempt two


class TestClockAndMetrics:
    def test_manual_clock_times_each_repeat(self):
        clock = ManualClock()

        def run(s):
            clock.advance(0.5)
            return {"value": 1.0}

        outcome = Runner(
            registry_with(run), clock=clock, workers=1
        ).run_trial(spec(repeats=3))
        assert outcome.times_s == [0.5, 0.5, 0.5]
        assert outcome.elapsed_s == 0.5

    def test_metrics_are_medianed_over_repeats(self):
        values = iter([1.0, 5.0, 2.0])

        def run(s):
            return {"value": next(values)}

        outcome = Runner(registry_with(run)).run_trial(spec(repeats=3))
        assert outcome.metrics == {"value": 2.0}


class TestExecutorSeam:
    def test_custom_executor_intercepts_execution(self):
        routed = []

        def run(s):  # registered but never called directly
            raise AssertionError("executor should intercept")

        def executor(fn, s):
            routed.append((fn, s.trial_id))
            return {"routed": 1.0}

        outcome = Runner(
            registry_with(run), executor=executor
        ).run_trial(spec())
        assert outcome.ok
        assert outcome.metrics == {"routed": 1.0}
        assert routed and routed[0][0] is run


class TestRecordOutcomes:
    def test_failures_are_recorded_too(self, tmp_path):
        store = TrajectoryStore(tmp_path / "t.jsonl")
        ok = TrialOutcome(
            spec=spec(seed=0), metrics={"value": 1.0},
            times_s=[0.1], elapsed_s=0.1,
        )
        bad = TrialOutcome(
            spec=spec(seed=1), status="error", error="ValueError: boom",
        )
        records = record_outcomes(
            store, [ok, bad], git_rev="abc123", ts="2026-01-01T00:00:00+00:00"
        )
        assert len(records) == 2
        stored = store.records()
        assert stored[0].metrics == {"value": 1.0, "elapsed_s": 0.1}
        assert stored[0].git_rev == "abc123"
        assert stored[1].status == "error"
        assert stored[1].error == "ValueError: boom"
        assert stored[1].metrics == {}
