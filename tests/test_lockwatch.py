"""Unit tests for the runtime lock watcher (repro.analysis.lockwatch)."""

import queue
import threading
import time

import pytest

from repro.analysis.lockwatch import (
    InstrumentedLock,
    InstrumentedRLock,
    lockwatch,
)
from repro.errors import ConcurrencyViolation, ConfigurationError


def _run_threads(*targets):
    threads = [
        threading.Thread(target=t, name=f"worker-{i}")
        for i, t in enumerate(targets)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
        assert not t.is_alive(), "worker wedged"


class TestInstrumentation:
    def test_locks_created_inside_block_are_wrapped(self):
        with lockwatch() as watcher:
            plain_lock = threading.Lock()
            reentrant_lock = threading.RLock()
        assert isinstance(plain_lock, InstrumentedLock)
        assert isinstance(reentrant_lock, InstrumentedRLock)
        assert watcher.report().locks_created >= 2

    def test_factories_restored_after_block(self):
        with lockwatch():
            pass
        assert not isinstance(threading.Lock(), InstrumentedLock)
        assert time.sleep.__module__ != "repro.analysis.lockwatch"

    def test_creation_site_label_and_io_exemption(self):
        with lockwatch():
            state_lock = threading.Lock()
            send_lock = threading.Lock()
        assert state_lock.name_hint == "state_lock"
        assert "state_lock@" in state_lock.label
        assert not state_lock.io_exempt
        assert send_lock.io_exempt

    def test_nesting_rejected(self):
        with lockwatch():
            with pytest.raises(ConfigurationError, match="does not nest"):
                with lockwatch():
                    pass

    def test_try_acquire_failure_not_recorded(self):
        with lockwatch() as watcher:
            busy_lock = threading.Lock()
            busy_lock.acquire()
            got = []
            _run_threads(lambda: got.append(busy_lock.acquire(False)))
            busy_lock.release()
        assert got == [False]
        report = watcher.report()
        assert report.clean


class TestOrderingGraph:
    def test_consistent_order_is_clean(self):
        with lockwatch() as watcher:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def ordered():
                with lock_a:
                    with lock_b:
                        pass

            _run_threads(ordered, ordered)
        report = watcher.report()
        assert report.cycles == []
        assert len(report.edges) == 1
        report.check()  # must not raise

    def test_inversion_detected_with_witness(self):
        with lockwatch() as watcher:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def ab():
                with lock_a:
                    with lock_b:
                        pass

            def ba():
                with lock_b:
                    with lock_a:
                        pass

            _run_threads(ab, ba)
        report = watcher.report()
        assert len(report.cycles) == 1
        with pytest.raises(ConcurrencyViolation) as exc:
            report.check()
        assert exc.value.report is report
        witness = report.witness()
        assert "CYCLE:" in witness
        assert "lock_a" in witness and "lock_b" in witness
        assert "worker-0" in witness and "worker-1" in witness
        assert " in ab" in witness  # acquisition stack names the function

    def test_rlock_reentry_is_not_an_edge(self):
        with lockwatch() as watcher:
            guard_lock = threading.RLock()

            def reenter():
                with guard_lock:
                    with guard_lock:
                        pass

            _run_threads(reenter)
        report = watcher.report()
        assert report.edges == []
        assert report.clean

    def test_condition_wait_keeps_stack_balanced(self):
        with lockwatch() as watcher:
            cond = threading.Condition(threading.RLock())
            other_lock = threading.Lock()
            ready = threading.Event()

            def waiter():
                with cond:
                    ready.set()
                    cond.wait(timeout=5)
                # after wait returns, the cond lock was re-acquired and
                # released; a fresh acquisition must not see stale holds
                with other_lock:
                    pass

            def notifier():
                ready.wait(timeout=5)
                with cond:
                    cond.notify_all()

            _run_threads(waiter, notifier)
        report = watcher.report()
        # the only legal edges involve the Event's internal condition;
        # no cycle and nothing blocking-under-lock beyond cond.wait itself
        assert report.cycles == []


class TestBlockingDetection:
    def test_sleep_under_lock_flagged(self):
        with lockwatch() as watcher:
            state_lock = threading.Lock()
            with state_lock:
                time.sleep(0.001)
        report = watcher.report()
        assert [b.desc for b in report.blocking] == ["time.sleep(0.001)"]
        assert report.blocking[0].held == [state_lock.label]
        with pytest.raises(ConcurrencyViolation, match="blocking call"):
            report.check()

    def test_sleep_without_lock_not_flagged(self):
        with lockwatch() as watcher:
            time.sleep(0.001)
        assert watcher.report().blocking == []

    def test_io_exempt_lock_not_flagged(self):
        with lockwatch() as watcher:
            send_lock = threading.Lock()
            with send_lock:
                time.sleep(0.001)
        assert watcher.report().blocking == []

    def test_queue_put_under_lock_flagged(self):
        with lockwatch() as watcher:
            state_lock = threading.Lock()
            q = queue.Queue()
            with state_lock:
                q.put("item")
        report = watcher.report()
        assert any(b.desc == "Queue.put()" for b in report.blocking)

    def test_nonblocking_queue_get_not_flagged(self):
        with lockwatch() as watcher:
            state_lock = threading.Lock()
            q = queue.Queue()
            q.put("item")
            with state_lock:
                q.get(block=False)
        # the setup put() ran outside the lock; get was non-blocking
        assert watcher.report().blocking == []

    def test_watch_blocking_off(self):
        with lockwatch(watch_blocking=False) as watcher:
            state_lock = threading.Lock()
            with state_lock:
                time.sleep(0.001)
        assert watcher.report().blocking == []
