"""``python -m repro pool``: verbs, exit-code contract, file:// smoke.

The CLI's exit codes are load-bearing — CI's pool-smoke job keys on
**0** success / **1** operational failure / **2** bad arguments — so
each class is pinned here, plus one full up → status → submit → down
walk over a file rendezvous (the CI job's shape, in miniature).
"""

import pytest

from repro.cli import main
from repro.pool.cli import pool_main


class TestExitCodeContract:
    def test_bad_rendezvous_scheme_is_2(self, capsys):
        assert pool_main(["status", "--rendezvous", "zk://nope"]) == 2
        assert "unknown rendezvous scheme" in capsys.readouterr().err

    def test_missing_rendezvous_is_an_argparse_2(self):
        with pytest.raises(SystemExit) as excinfo:
            pool_main(["status"])
        assert excinfo.value.code == 2

    def test_bad_configuration_is_2(self, tmp_path, capsys):
        # zero ranks: configuration error, not operational
        code = pool_main(
            ["submit", "--rendezvous", f"file://{tmp_path}", "--ranks", "0"]
        )
        assert code == 2
        assert "rank" in capsys.readouterr().err

    def test_empty_pool_status_is_1(self, tmp_path, capsys):
        assert pool_main(["status", "--rendezvous", f"file://{tmp_path}"]) == 1
        assert "no agents published" in capsys.readouterr().out

    def test_submit_without_agents_is_1(self, tmp_path, capsys):
        code = pool_main(
            [
                "submit",
                "--rendezvous",
                f"file://{tmp_path}",
                "--ranks",
                "2",
                "--timeout",
                "0.2",
            ]
        )
        assert code == 1
        assert "0 of 2 agents" in capsys.readouterr().err

    def test_down_with_nothing_running_is_0(self, tmp_path, capsys):
        assert pool_main(["down", "--rendezvous", f"file://{tmp_path}"]) == 0
        assert "stopped 0 of 0" in capsys.readouterr().out


class TestFileRendezvousSmoke:
    def test_up_status_submit_down(self, tmp_path, capsys):
        url = f"file://{tmp_path}"
        try:
            assert pool_main(["up", "--rendezvous", url, "--ranks", "2"]) == 0
            assert "2 agents up" in capsys.readouterr().out

            assert pool_main(["status", "--rendezvous", url]) == 0
            status = capsys.readouterr().out
            assert status.count("alive") == 2

            # dispatched through the top-level CLI to cover the intercept;
            # --repeats 2 exercises the warm path in one command
            code = main(
                [
                    "pool",
                    "submit",
                    "--rendezvous",
                    url,
                    "--ranks",
                    "2",
                    "--repeats",
                    "2",
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "bitwise=True" in out
            assert "warm" in out and "cold" in out
            assert "plan misses 0" in out  # the warm repeat
        finally:
            assert pool_main(["down", "--rendezvous", url]) == 0

        # everything shut down: status now reports an empty rendezvous
        assert pool_main(["status", "--rendezvous", url]) == 1
