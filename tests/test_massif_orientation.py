"""Tests for grain orientations and polycrystal stiffness fields."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.kernels.green_massif import LameParameters
from repro.massif.elasticity import cubic_stiffness, isotropic_stiffness
from repro.massif.orientation import (
    polycrystal_stiffness_field,
    random_rotation,
    rotate_stiffness,
)
from repro.massif.solver import MassifSolver


class TestRandomRotation:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_is_rotation(self, seed):
        r = random_rotation(np.random.default_rng(seed))
        np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)

    def test_deterministic_with_seed(self):
        a = random_rotation(np.random.default_rng(3))
        b = random_rotation(np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_orientations_spread(self):
        """Rotated x-axes cover the sphere (no obvious bias)."""
        rng = np.random.default_rng(0)
        axes = np.array([random_rotation(rng)[:, 0] for _ in range(500)])
        mean = axes.mean(axis=0)
        assert np.linalg.norm(mean) < 0.15


class TestRotateStiffness:
    def test_isotropic_invariant(self):
        """Isotropic stiffness is unchanged by any rotation."""
        c = isotropic_stiffness(LameParameters(lam=1.0, mu=0.6))
        r = random_rotation(np.random.default_rng(1))
        np.testing.assert_allclose(rotate_stiffness(c, r), c, atol=1e-10)

    def test_cubic_changed_by_generic_rotation(self):
        c = cubic_stiffness(3.0, 1.0, 0.5)
        r = random_rotation(np.random.default_rng(2))
        assert not np.allclose(rotate_stiffness(c, r), c, atol=1e-6)

    def test_cubic_invariant_under_axis_permutation(self):
        """90-degree rotations are in the cubic symmetry group."""
        c = cubic_stiffness(3.0, 1.0, 0.5)
        r90 = np.array([[0, -1, 0], [1, 0, 0], [0, 0, 1]], dtype=float)
        np.testing.assert_allclose(rotate_stiffness(c, r90), c, atol=1e-12)

    def test_composition(self):
        c = cubic_stiffness(3.0, 1.0, 0.5)
        rng = np.random.default_rng(4)
        r1, r2 = random_rotation(rng), random_rotation(rng)
        a = rotate_stiffness(rotate_stiffness(c, r1), r2)
        b = rotate_stiffness(c, r2 @ r1)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_preserves_symmetries(self):
        c = cubic_stiffness(3.0, 1.0, 0.5)
        cr = rotate_stiffness(c, random_rotation(np.random.default_rng(5)))
        np.testing.assert_allclose(cr, cr.transpose(1, 0, 2, 3), atol=1e-12)
        np.testing.assert_allclose(cr, cr.transpose(0, 1, 3, 2), atol=1e-12)
        np.testing.assert_allclose(cr, cr.transpose(2, 3, 0, 1), atol=1e-12)

    def test_non_orthogonal_rejected(self):
        c = cubic_stiffness(3.0, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            rotate_stiffness(c, 2 * np.eye(3))

    def test_shape_checks(self):
        with pytest.raises(ShapeError):
            rotate_stiffness(np.zeros((3, 3)), np.eye(3))
        with pytest.raises(ShapeError):
            rotate_stiffness(np.zeros((3, 3, 3, 3)), np.eye(4))


class TestPolycrystalField:
    def test_builds_and_solves(self):
        crystal = cubic_stiffness(3.0, 1.2, 0.8)
        sf = polycrystal_stiffness_field(
            8, 5, crystal, rng=np.random.default_rng(6)
        )
        assert sf.num_phases == 5
        macro = np.zeros((3, 3))
        macro[0, 1] = macro[1, 0] = 0.01
        rep = MassifSolver(sf, tol=1e-3, max_iter=500).solve(macro)
        assert rep.converged

    def test_grain_count(self):
        crystal = cubic_stiffness(3.0, 1.2, 0.8)
        sf = polycrystal_stiffness_field(
            8, 4, crystal, rng=np.random.default_rng(7)
        )
        assert len(sf.phase_tensors) == 4
        assert int(sf.phase_map.max()) <= 3
