"""Tests for real transforms, N-D transforms, and the backend registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.fft.backend import available_backends, get_backend, register_backend
from repro.fft.fftn import fft3, fftn, ifft3, ifftn
from repro.fft.real import irfft1d, rfft1d


class TestReal:
    @pytest.mark.parametrize("n", [2, 7, 16, 24])
    def test_rfft_matches_numpy(self, n, rng):
        x = rng.standard_normal((3, n))
        np.testing.assert_allclose(rfft1d(x), np.fft.rfft(x, axis=-1), atol=1e-8)

    @pytest.mark.parametrize("n", [2, 7, 16, 24])
    def test_roundtrip(self, n, rng):
        x = rng.standard_normal((2, n))
        np.testing.assert_allclose(irfft1d(rfft1d(x), n), x, atol=1e-8)

    def test_axis_argument(self, rng):
        x = rng.standard_normal((8, 5))
        np.testing.assert_allclose(
            rfft1d(x, axis=0), np.fft.rfft(x, axis=0), atol=1e-8
        )

    def test_rfft_rejects_complex(self):
        with pytest.raises(ShapeError):
            rfft1d(np.zeros(4, dtype=complex))

    def test_irfft_rejects_wrong_length(self):
        with pytest.raises(ShapeError):
            irfft1d(np.zeros(5, dtype=complex), 16)

    def test_half_spectrum_length(self, rng):
        x = rng.standard_normal(10)
        assert rfft1d(x).shape[-1] == 6


class TestFFTN:
    @pytest.mark.parametrize("backend", ["native", "numpy"])
    def test_fft3_matches_numpy(self, backend, rng):
        x = rng.standard_normal((8, 8, 8))
        np.testing.assert_allclose(
            fft3(x, backend=backend), np.fft.fftn(x), atol=1e-8
        )

    @pytest.mark.parametrize("backend", ["native", "numpy"])
    def test_roundtrip(self, backend, rng):
        x = rng.standard_normal((4, 4, 4)) + 1j * rng.standard_normal((4, 4, 4))
        np.testing.assert_allclose(
            ifft3(fft3(x, backend=backend), backend=backend), x, atol=1e-8
        )

    def test_non_cubic_fftn(self, rng):
        x = rng.standard_normal((4, 6, 8))
        np.testing.assert_allclose(fftn(x), np.fft.fftn(x), atol=1e-8)

    def test_partial_axes(self, rng):
        x = rng.standard_normal((4, 6))
        np.testing.assert_allclose(
            fftn(x, axes=(1,)), np.fft.fft(x, axis=1), atol=1e-8
        )

    def test_ifftn_partial_axes(self, rng):
        x = rng.standard_normal((4, 6)) + 0j
        np.testing.assert_allclose(
            ifftn(x, axes=(0,)), np.fft.ifft(x, axis=0), atol=1e-8
        )

    def test_fft3_rejects_rank2(self):
        with pytest.raises(ValueError):
            fft3(np.zeros((4, 4)))

    def test_backends_agree(self, rng):
        x = rng.standard_normal((8, 8, 8))
        np.testing.assert_allclose(
            fft3(x, backend="native"), fft3(x, backend="numpy"), atol=1e-8
        )


class TestBackendRegistry:
    def test_builtins_present(self):
        assert "native" in available_backends()
        assert "numpy" in available_backends()

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_backend("nonexistent")

    def test_get_passthrough(self):
        be = get_backend("numpy")
        assert get_backend(be) is be

    def test_register_custom(self, rng):
        calls = []

        def myfft(x, axis=-1):
            calls.append(axis)
            return np.fft.fft(x, axis=axis)

        register_backend("counting", myfft, lambda x, axis=-1: np.fft.ifft(x, axis=axis))
        x = rng.standard_normal((4, 4, 4))
        fft3(x, backend="counting")
        assert len(calls) == 3  # three 1D sweeps
        assert "counting" in available_backends()

    def test_register_empty_name_raises(self):
        with pytest.raises(ConfigurationError):
            register_backend("", lambda x, a: x, lambda x, a: x)
