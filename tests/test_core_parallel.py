"""Tests for the process-parallel fan-out and the Hermitian fast path at
the pipeline level."""

import numpy as np
import pytest

from repro.core.local_conv import LocalConvolution
from repro.core.parallel import convolve_subdomains_parallel, default_workers
from repro.core.pipeline import LowCommConvolution3D
from repro.core.policy import SamplingPolicy
from repro.errors import ConfigurationError
from repro.kernels.gaussian import GaussianKernel
from repro.octree.sampling import build_box_pattern


@pytest.fixture
def setup32(rng):
    n, k = 32, 8
    spec = GaussianKernel(n=n, sigma=1.5).spectrum()
    field = rng.standard_normal((n, n, n))
    return n, k, spec, field


def _module_level_kernel(ix, iy):
    """Picklable on-the-fly kernel: pencils of a separable decay spectrum."""
    n = 32
    f = np.minimum(np.arange(n), n - np.arange(n)).astype(np.float64)
    gx = np.exp(-0.05 * f[ix] ** 2)
    gy = np.exp(-0.05 * f[iy] ** 2)
    gz = np.exp(-0.05 * f**2)
    return (gx * gy)[:, None] * gz[None, :]


class TestRunParallel:
    def test_bitwise_matches_serial(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        serial = pipe.run_serial(field)
        parallel = pipe.run_parallel(field, max_workers=2)
        assert np.array_equal(serial.approx, parallel.approx)
        assert serial.num_subdomains == parallel.num_subdomains
        assert serial.total_samples == parallel.total_samples
        assert serial.compressed_bytes == parallel.compressed_bytes
        for (s1, f1), (s2, f2) in zip(serial.per_domain, parallel.per_domain):
            assert s1.index == s2.index
            assert np.array_equal(f1.values, f2.values)

    def test_sparse_field_skips_zero_chunks(self, setup32):
        n, k, spec, _ = setup32
        field = np.zeros((n, n, n))
        field[8:24, 8:24, 8:24] = 1.0
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        res = pipe.run_parallel(field, max_workers=2)
        assert res.num_subdomains == 8
        assert np.array_equal(res.approx, pipe.run_serial(field).approx)

    def test_zero_field(self, setup32):
        n, k, spec, _ = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2))
        res = pipe.run_parallel(np.zeros((n, n, n)), max_workers=2)
        assert res.num_subdomains == 0
        assert np.all(res.approx == 0)

    def test_single_worker(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(4), batch=64)
        res = pipe.run_parallel(field, max_workers=1)
        assert np.array_equal(res.approx, pipe.run_serial(field).approx)

    def test_callable_kernel_ships_by_pickle(self, setup32):
        n, k, _spec, field = setup32
        pipe = LowCommConvolution3D(
            n, k, _module_level_kernel, SamplingPolicy.flat_rate(4), batch=64
        )
        res = pipe.run_parallel(field, max_workers=2)
        assert np.array_equal(res.approx, pipe.run_serial(field).approx)

    def test_unpicklable_kernel_rejected(self, setup32):
        n, k, _spec, field = setup32
        local_fn = lambda ix, iy: np.ones((len(ix), n))  # noqa: E731
        pipe = LowCommConvolution3D(n, k, local_fn, SamplingPolicy.flat_rate(4))
        with pytest.raises(ConfigurationError, match="picklable"):
            pipe.run_parallel(field, max_workers=2)

    def test_bad_worker_count_rejected(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(4))
        with pytest.raises(ConfigurationError):
            pipe.run_parallel(field, max_workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_fanout_returns_sorted_indices(self, setup32):
        n, k, spec, field = setup32
        pairs = convolve_subdomains_parallel(
            field, n, k, spec, SamplingPolicy.flat_rate(4), [5, 3, 11],
            max_workers=2,
        )
        assert [i for i, _v in pairs] == [3, 5, 11]


class TestRunDistributedParallel:
    def test_matches_serial_numerics(self, setup32):
        from repro.cluster.comm import SimulatedComm

        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        serial = pipe.run_serial(field)
        comm = SimulatedComm(4)
        dist = pipe.run_distributed(field, comm, max_workers=2)
        np.testing.assert_allclose(dist.approx, serial.approx, atol=1e-12)
        assert dist.comm_rounds == 1


class TestHermitianFastPath:
    def test_auto_detected_for_gaussian(self, setup32):
        n, k, spec, _field = setup32
        pipe = LowCommConvolution3D(n, k, spec)
        assert pipe.local.real_kernel is True

    def test_matches_complex_path(self, setup32):
        n, k, spec, field = setup32
        policy = SamplingPolicy.flat_rate(2)
        herm = LowCommConvolution3D(n, k, spec, policy, batch=64, real_kernel=True)
        comp = LowCommConvolution3D(n, k, spec, policy, batch=64, real_kernel=False)
        a = herm.run_serial(field).approx
        b = comp.run_serial(field).approx
        scale = float(np.max(np.abs(b)))
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-10 * scale)

    def test_parallel_hermitian_matches_serial(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(
            n, k, spec, SamplingPolicy.flat_rate(2), batch=64, real_kernel=True
        )
        assert np.array_equal(
            pipe.run_parallel(field, max_workers=2).approx,
            pipe.run_serial(field).approx,
        )

    def test_rectangular_subdomain_matches_complex(self, rng):
        """Hermitian == complex on a non-cubic sub-domain (irregular
        partitions, paper §3.1) via an explicit box pattern."""
        n = 32
        spec = GaussianKernel(n=n, sigma=1.5).spectrum()
        policy = SamplingPolicy.flat_rate(2)
        shape, corner = (8, 4, 16), (4, 12, 8)
        sub = rng.standard_normal(shape)
        pattern = build_box_pattern(n, shape, corner, r_near=1, r_mid=2, r_far=4)
        herm = LocalConvolution(n, spec, policy, real_kernel=True)
        comp = LocalConvolution(n, spec, policy, real_kernel=False)
        a = herm.convolve(sub, corner, pattern=pattern)
        b = comp.convolve(sub, corner, pattern=pattern)
        scale = float(np.max(np.abs(b.values)))
        np.testing.assert_allclose(
            a.values, b.values, rtol=1e-10, atol=1e-10 * scale
        )

    def test_real_kernel_claim_validated(self, setup32):
        n, k, spec, _field = setup32
        bad = spec.astype(np.complex128)
        bad[1, 2, 3] += 1j * np.max(np.abs(spec))
        with pytest.raises(ConfigurationError, match="real_kernel"):
            LowCommConvolution3D(n, k, bad, real_kernel=True)

    def test_complex_kernel_auto_detects_complex_path(self, setup32):
        n, k, spec, _field = setup32
        bad = spec.astype(np.complex128)
        bad[1, 2, 3] += 1j * np.max(np.abs(spec))
        pipe = LowCommConvolution3D(n, k, bad)
        assert pipe.local.real_kernel is False
