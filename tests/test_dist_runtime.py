"""End-to-end dist-run validation: bitwise identity + wire accounting.

The PR's acceptance bar, as tests:

- a real SPMD job (threads or OS processes over TCP) produces output
  bitwise identical to ``run_serial`` — not merely allclose;
- the measured exchange wire bytes obey the *exact* frame-level
  invariant and stay within 5% of the paper's Eq 6 value-byte
  prediction at the reference configuration (n=32, k=8, flat:2);
- the simulated substrate's allgather ledger equals the Eq 6 prediction
  exactly, triangulating model, simulation and wire.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.distributed_runner import DistributedLowCommConvolution
from repro.dist.launcher import (
    default_spectrum,
    dist_run,
    expected_exchange_value_bytes,
    naive_eq6_bytes,
    simulated_crosscheck,
)
from repro.dist.wire import HEADER_BYTES
from repro.dist.worker import DistConfig, build_pipeline, composite_field
from repro.errors import ConfigurationError
from repro.kernels.gaussian import GaussianKernel

SMALL = dict(n=16, k=4, sigma=2.0, policy="flat:2")
#: the calibrated reference point for the 5%-of-Eq-6 acceptance check
#: (smaller grids carry proportionally more framing/metadata overhead)
REFERENCE = dict(n=32, k=8, sigma=2.0, policy="flat:2")


def _serial(config):
    field = composite_field(config.n, config.seed)
    spectrum = default_spectrum(config)
    return field, spectrum, build_pipeline(config, spectrum).run_serial(field)


class TestBitwiseIdentity:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_local_matches_run_serial(self, ranks):
        config = DistConfig(num_ranks=ranks, transport="local", **SMALL)
        field, spectrum, serial = _serial(config)
        report = dist_run(config, field=field, spectrum=spectrum)
        assert np.array_equal(report.approx, serial.approx)
        assert report.failed_ranks == []
        assert not report.recovered

    @pytest.mark.parametrize("ranks", [2, 4])
    def test_tcp_matches_run_serial(self, ranks):
        config = DistConfig(num_ranks=ranks, transport="tcp", **SMALL)
        field, spectrum, serial = _serial(config)
        report = dist_run(config, field=field, spectrum=spectrum)
        assert np.array_equal(report.approx, serial.approx)
        assert report.failed_ranks == []

    def test_banded_policy_bitwise(self):
        config = DistConfig(
            n=16, k=4, sigma=2.0, policy="banded", num_ranks=2, transport="local"
        )
        field, spectrum, serial = _serial(config)
        report = dist_run(config, field=field, spectrum=spectrum)
        assert np.array_equal(report.approx, serial.approx)

    def test_default_inputs_match_cli_composite(self):
        config = DistConfig(num_ranks=2, transport="local", **SMALL)
        _field, _spectrum, serial = _serial(config)
        # dist_run's defaults must regenerate the same field/spectrum
        report = dist_run(config)
        assert np.array_equal(report.approx, serial.approx)


class TestWireAccounting:
    def test_exact_frame_invariant(self):
        """Every rank sends its blob to P-1 peers; nothing else moves
        under the exchange category."""
        config = DistConfig(num_ranks=4, transport="local", **SMALL)
        report = dist_run(config)
        p = config.num_ranks
        expected = sum(
            (p - 1) * (HEADER_BYTES + r.exchange_payload_bytes)
            for r in report.rank_results.values()
        )
        assert report.exchange_wire_bytes == expected
        assert report.wire_totals["recv.exchange.bytes"] == expected

    def test_reference_config_within_5pct_of_eq6(self):
        config = DistConfig(num_ranks=4, transport="local", **REFERENCE)
        report = dist_run(config)
        assert report.predicted_value_bytes > 0
        # wire = value bytes + bounded framing/metadata overhead
        assert 1.0 <= report.wire_over_model <= 1.05

    def test_single_rank_moves_no_bytes(self):
        config = DistConfig(num_ranks=1, transport="local", **SMALL)
        report = dist_run(config)
        assert report.exchange_wire_bytes == 0
        assert report.predicted_value_bytes == 0
        assert report.wire_over_model == 0.0

    def test_prediction_scales_with_peers(self):
        field = composite_field(16, 0)
        two = DistConfig(num_ranks=2, transport="local", **SMALL)
        four = DistConfig(num_ranks=4, transport="local", **SMALL)
        b2 = expected_exchange_value_bytes(two, field)
        b4 = expected_exchange_value_bytes(four, field)
        assert b4 == 3 * b2  # (P-1) scaling, same sample count

    def test_naive_closed_form_is_reference_only(self):
        config = DistConfig(num_ranks=2, transport="local", **REFERENCE)
        field = composite_field(config.n, config.seed)
        naive = naive_eq6_bytes(config)
        exact = expected_exchange_value_bytes(config, field)
        assert 0 < naive < exact  # closed form undercounts, recorded anyway
        banded = DistConfig(
            n=16, k=4, sigma=2.0, policy="banded", num_ranks=2, transport="local"
        )
        assert naive_eq6_bytes(banded) == 0

    def test_bad_precision_rejected(self):
        config = DistConfig(num_ranks=2, transport="local", **SMALL)
        object.__setattr__(config, "precision", "float16")
        with pytest.raises(ConfigurationError, match="precision"):
            expected_exchange_value_bytes(config, composite_field(16, 0))


class TestSimulatedCrosscheck:
    def test_ledger_equals_eq6_exactly(self):
        config = DistConfig(num_ranks=4, transport="local", **SMALL)
        field = composite_field(config.n, config.seed)
        sim = simulated_crosscheck(config, field=field)
        assert sim["allgather_bytes"] == expected_exchange_value_bytes(
            config, field
        )
        assert sim["allgather_rounds"] == 1

    def test_simulated_result_close_to_real(self):
        config = DistConfig(num_ranks=2, transport="local", **SMALL)
        field, spectrum, serial = _serial(config)
        sim = simulated_crosscheck(config, field=field, spectrum=spectrum)
        # the simulated accumulator sums in rank-grouped order, so only
        # allclose — the real runtime sorts by sub-domain index and is
        # bitwise (TestBitwiseIdentity)
        np.testing.assert_allclose(sim["approx"], serial.approx, atol=1e-12)


class TestDistributedRunnerSelector:
    def _runner(self, spectrum=None):
        if spectrum is None:
            spectrum = GaussianKernel(n=16, sigma=2.0).spectrum()
        return DistributedLowCommConvolution(n=16, k=4, kernel_spectrum=spectrum)

    def test_local_transport_bitwise(self):
        runner = self._runner()
        field = composite_field(16, 0)
        serial = runner.pipeline.run_serial(field)
        report = runner.run(field, num_ranks=2, transport="local")
        assert np.array_equal(report.approx, serial.approx)
        assert report.comm_bytes > 0
        assert len(report.per_rank_compute_s) == 2

    def test_simulated_default_unchanged(self):
        runner = self._runner()
        field = composite_field(16, 0)
        report = runner.run(field, num_ranks=2)
        assert report.alltoall_rounds == 0 or report.comm_bytes > 0

    def test_unknown_transport_rejected(self):
        runner = self._runner()
        with pytest.raises(ConfigurationError, match="transport"):
            runner.run(composite_field(16, 0), num_ranks=2, transport="mpi")

    def test_callable_spectrum_needs_simulated(self):
        runner = self._runner(spectrum=lambda kz, ky: kz)
        with pytest.raises(ConfigurationError, match="dense kernel spectrum"):
            runner.run(composite_field(16, 0), num_ranks=2, transport="local")


class TestConfigValidation:
    def test_defaults_valid(self):
        DistConfig()  # no raise

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(num_ranks=0), "rank"),
            (dict(transport="mpi"), "transport"),
            (dict(precision="float16"), "precision"),
            (dict(fail_stage="sometime"), "fail_stage"),
            (dict(fail_rank=5), "fail_rank"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        base = dict(n=16, k=4, num_ranks=2)
        base.update(kwargs)
        with pytest.raises(ConfigurationError, match=match):
            DistConfig(**base)


def test_cli_dist_run_exits_zero(capsys):
    code = main(
        [
            "dist-run",
            "--ranks",
            "2",
            "--transport",
            "local",
            "--n",
            "16",
            "--k",
            "4",
            "--policy",
            "flat:2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "bitwise identical to run_serial" in out
    assert "True" in out
