"""Fault injection at the runtime level: ranks die, the answer doesn't.

``DistConfig.fail_rank`` / ``fail_stage`` make one rank call its abort
hook (``os._exit`` under TCP, a fabric kill on the loopback transport) at
a chosen pipeline stage.  Whatever the stage, ``dist_run`` must detect
the death, fall back to the checkpoint blobs the ranks posted, recompute
what is missing, and still produce output bitwise identical to
``run_serial``.
"""

import numpy as np
import pytest

from repro.dist.launcher import default_spectrum, dist_run
from repro.dist.worker import (
    BARRIER_FAIL_STAGES,
    STREAM_FAIL_STAGES,
    DistConfig,
    build_pipeline,
    composite_field,
)
from repro.errors import ConfigurationError

SMALL = dict(n=16, k=4, sigma=2.0, policy="flat:2")


def _serial_reference(config):
    field = composite_field(config.n, config.seed)
    spectrum = default_spectrum(config)
    serial = build_pipeline(config, spectrum).run_serial(field)
    return field, spectrum, serial


def _assert_recovers_bitwise(config):
    field, spectrum, serial = _serial_reference(config)
    report = dist_run(config, field=field, spectrum=spectrum)
    assert config.fail_rank in report.failed_ranks
    assert report.recovered
    assert np.array_equal(report.approx, serial.approx)
    return report


class TestLocalRecovery:
    @pytest.mark.parametrize("stage", BARRIER_FAIL_STAGES)
    def test_stage_crash_recovers_bitwise(self, stage):
        config = DistConfig(
            num_ranks=3,
            transport="local",
            fail_rank=1,
            fail_stage=stage,
            **SMALL,
        )
        _assert_recovers_bitwise(config)

    def test_rank0_crash_recovers(self):
        # rank 0 is special (it broadcasts the inputs) but dies *after*
        # the broadcast stages, so recovery still works
        config = DistConfig(
            num_ranks=3,
            transport="local",
            fail_rank=0,
            fail_stage="before_exchange",
            **SMALL,
        )
        _assert_recovers_bitwise(config)

    def test_before_checkpoint_loses_that_ranks_state(self):
        """Dying before posting the checkpoint means the driver must
        *recompute* the dead rank's sub-domains, not just restore them."""
        config = DistConfig(
            num_ranks=2,
            transport="local",
            fail_rank=1,
            fail_stage="before_checkpoint",
            **SMALL,
        )
        report = _assert_recovers_bitwise(config)
        # the dead rank never reported a result
        assert 1 not in report.rank_results


class TestTcpRecovery:
    @pytest.mark.parametrize("stage", ["before_exchange", "mid_exchange"])
    def test_process_death_recovers_bitwise(self, stage):
        config = DistConfig(
            num_ranks=3,
            transport="tcp",
            fail_rank=1,
            fail_stage=stage,
            **SMALL,
        )
        _assert_recovers_bitwise(config)


class TestStreamedRecovery:
    """Fault injection at the overlap-mode pipeline's new interleavings.

    ``stream_send`` dies with the first chunk (at least partially) on the
    wire, ``mid_window`` with the send window half-way through the chunk
    stream, ``post_chunk_checkpoint`` after the driver holds a chunk the
    peers never saw.  Whatever the stage, recovery must rebuild a
    bitwise-identical result from the per-chunk checkpoint blobs.
    """

    @pytest.mark.parametrize("stage", STREAM_FAIL_STAGES)
    def test_local_stream_crash_recovers_bitwise(self, stage):
        config = DistConfig(
            num_ranks=3,
            transport="local",
            overlap=True,
            fail_rank=1,
            fail_stage=stage,
            **SMALL,
        )
        _assert_recovers_bitwise(config)

    @pytest.mark.parametrize("stage", STREAM_FAIL_STAGES)
    def test_tcp_stream_crash_recovers_bitwise(self, stage):
        config = DistConfig(
            num_ranks=3,
            transport="tcp",
            overlap=True,
            fail_rank=1,
            fail_stage=stage,
            **SMALL,
        )
        _assert_recovers_bitwise(config)

    def test_posted_chunks_survive_as_recovery_state(self):
        """A rank dying mid-window has already posted some chunk
        checkpoints — the driver resumes from them instead of
        recomputing everything the dead rank did."""
        from repro.dist.runtime import run_spmd

        config = DistConfig(
            num_ranks=2,
            transport="local",
            overlap=True,
            fail_rank=1,
            fail_stage="mid_window",
            **SMALL,
        )
        field = composite_field(config.n, config.seed)
        spectrum = default_spectrum(config)
        outcome = run_spmd(config, field, spectrum)
        assert 1 in outcome.failures
        # the dead rank posted per-chunk blobs before dying mid-window
        assert len(outcome.chunk_checkpoints.get(1, [])) >= 1
        # and each posted blob is a valid one-entry checkpoint
        from repro.core.checkpoint import checkpoint_from_bytes

        for blob in outcome.all_checkpoint_blobs():
            assert len(checkpoint_from_bytes(blob)) == 1

    def test_barrier_stages_still_work_with_overlap(self):
        """The legacy stage names also fire in overlap mode."""
        config = DistConfig(
            num_ranks=2,
            transport="local",
            overlap=True,
            fail_rank=1,
            fail_stage="before_exchange",
            **SMALL,
        )
        _assert_recovers_bitwise(config)

    def test_stream_stage_requires_overlap_mode(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            DistConfig(
                num_ranks=2, fail_rank=1, fail_stage="stream_send", **SMALL
            )


class TestHeartbeatedRun:
    def test_clean_run_with_heartbeats_is_bitwise(self):
        """Beacon traffic must not leak into the exchange accounting or
        perturb the result."""
        config = DistConfig(
            num_ranks=2, transport="local", heartbeat_s=0.05, **SMALL
        )
        field, spectrum, serial = _serial_reference(config)
        report = dist_run(config, field=field, spectrum=spectrum)
        assert np.array_equal(report.approx, serial.approx)
        assert not report.recovered
        # heartbeats are control traffic, not exchange traffic
        p = config.num_ranks
        from repro.dist.wire import HEADER_BYTES

        expected = sum(
            (p - 1) * (HEADER_BYTES + r.exchange_payload_bytes)
            for r in report.rank_results.values()
        )
        assert report.exchange_wire_bytes == expected


class TestHeartbeatSenderShutdown:
    """The beacon thread must never be able to wedge a shutdown."""

    def _sender(self, interval_s=0.01):
        from repro.dist.heartbeat import HeartbeatSender
        from repro.dist.transport import LocalFabric

        fabric = LocalFabric(2)
        return HeartbeatSender(fabric.endpoint(0), interval_s), fabric

    def test_thread_is_daemon(self):
        sender, _ = self._sender()
        assert sender._thread.daemon

    def test_stop_is_idempotent_and_joinable(self):
        sender, _ = self._sender()
        sender.start()
        assert sender.stop() is True
        assert sender.stop() is True  # second call must not block or raise
        assert not sender._thread.is_alive()

    def test_stop_before_start_is_safe(self):
        sender, _ = self._sender()
        assert sender.stop() is True
        sender.start()  # stop already requested: must stay a no-op
        assert not sender._thread.is_alive()

    def test_start_twice_is_a_noop(self):
        sender, _ = self._sender()
        sender.start()
        sender.start()
        assert sender.stop() is True

    def test_communicator_close_twice_is_safe(self):
        from repro.dist.collectives import Communicator
        from repro.dist.transport import LocalFabric

        fabric = LocalFabric(2)
        comm = Communicator(fabric.endpoint(0), heartbeat_s=0.01)
        comm.close()
        comm.close()  # double close: idempotent stop + transport close
        assert comm._sender is not None
        assert not comm._sender._thread.is_alive()
