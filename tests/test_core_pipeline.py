"""Tests for accumulation and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.cluster.comm import SimulatedComm
from repro.core.accumulate import Accumulator, accumulate_global
from repro.core.decomposition import DomainDecomposition
from repro.core.local_conv import LocalConvolution
from repro.core.pipeline import LowCommConvolution3D
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_convolve
from repro.errors import CommunicationError, ConfigurationError, ShapeError
from repro.kernels.gaussian import GaussianKernel
from repro.util.arrays import l2_relative_error


@pytest.fixture
def setup32(rng):
    n, k = 32, 8
    spec = GaussianKernel(n=n, sigma=1.5).spectrum()
    field = np.zeros((n, n, n))
    field[8:24, 8:24, 8:24] = 1.0
    return n, k, spec, field


class TestAccumulateGlobal:
    def test_sums_reconstructions(self, setup32):
        n, k, spec, field = setup32
        lc = LocalConvolution(n, spec, SamplingPolicy.flat_rate(1), batch=64)
        d = DomainDecomposition(n, k)
        fields = [
            lc.convolve(d.extract(field, s), s.corner)
            for s in d
            if np.any(d.extract(field, s))
        ]
        total = accumulate_global(fields)
        exact = reference_convolve(field, spec)
        np.testing.assert_allclose(total, exact, atol=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            accumulate_global([])


class TestPipelineSerial:
    def test_lossless_r1_matches_reference(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(1), batch=64)
        res = pipe.run_serial(field)
        exact = reference_convolve(field, spec)
        np.testing.assert_allclose(res.approx, exact, atol=1e-9)

    def test_lossy_error_small_for_smooth_input(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        res = pipe.run_serial(field)
        exact = reference_convolve(field, spec)
        assert l2_relative_error(res.approx, exact) < 0.05

    def test_zero_chunks_skipped(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        res = pipe.run_serial(field)
        # only the 8 central sub-domains are non-zero
        assert res.num_subdomains == 8

    def test_zero_field(self, setup32):
        n, k, spec, _ = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2))
        res = pipe.run_serial(np.zeros((n, n, n)))
        assert res.num_subdomains == 0
        assert np.all(res.approx == 0)

    def test_result_statistics(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        res = pipe.run_serial(field)
        assert res.total_samples > 0
        assert res.compressed_bytes > 0
        assert res.compression_ratio > 1
        assert res.elapsed_s > 0
        assert len(res.per_domain) == res.num_subdomains

    def test_shape_check(self, setup32):
        n, k, spec, _ = setup32
        pipe = LowCommConvolution3D(n, k, spec)
        with pytest.raises(ShapeError):
            pipe.run_serial(np.zeros((8, 8, 8)))


class TestPipelineDistributed:
    def test_matches_serial(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        serial = pipe.run_serial(field)
        comm = SimulatedComm(4)
        dist = pipe.run_distributed(field, comm)
        np.testing.assert_allclose(dist.approx, serial.approx, atol=1e-12)

    def test_exactly_one_collective_round(self, setup32):
        """The Fig 1(b) claim: a single sparse exchange, no all-to-alls."""
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        comm = SimulatedComm(4)
        res = pipe.run_distributed(field, comm)
        assert res.comm_rounds == 1
        assert comm.ledger.alltoall_rounds == 0
        assert comm.ledger.rounds_by_type.get("allgather", 0) == 1

    def test_comm_bytes_less_than_dense(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(4), batch=64)
        comm = SimulatedComm(4)
        res = pipe.run_distributed(field, comm)
        dense_exchange = 8 * n**3 * 2  # two all-to-all stages of Eq 1
        assert res.comm_bytes < dense_exchange

    def test_single_rank(self, setup32):
        n, k, spec, field = setup32
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        comm = SimulatedComm(1)
        res = pipe.run_distributed(field, comm)
        serial = pipe.run_serial(field)
        np.testing.assert_allclose(res.approx, serial.approx, atol=1e-12)


class TestAccumulatorDistributed:
    def test_rank_count_mismatch(self, setup32):
        n, k, spec, field = setup32
        acc = Accumulator(DomainDecomposition(n, k))
        comm = SimulatedComm(4)
        with pytest.raises(CommunicationError):
            acc.exchange_and_accumulate([[], []], comm)

    def test_assemble_covers_grid(self, setup32):
        n, k, spec, field = setup32
        d = DomainDecomposition(n, k)
        acc = Accumulator(d)
        blocks = {s.index: np.full((k, k, k), float(s.index)) for s in d}
        out = acc.assemble(blocks)
        for s in d:
            assert (out[s.slices()] == s.index).all()
