"""End-to-end CLI coverage: run -> record -> report -> gate, exit codes.

Uses a micro experiment (serial mode at n=8) so the full loop — grid
expansion, real trial execution through the default registry, store
append, gate evaluation — runs in well under a second.
"""

import pytest

from repro.cli import main
from repro.xpr.cli import xpr_main
from repro.xpr.grid import EXPERIMENTS, ExperimentGrid, define_experiment
from repro.xpr.store import TrajectoryStore


@pytest.fixture
def micro_experiment():
    define_experiment(
        "t-micro",
        ExperimentGrid(
            "t-micro",
            matrix={"seed": [0, 1]},
            fixed={"mode": "serial", "n": 8, "k": 4, "repeats": 1},
        ),
    )
    yield "t-micro"
    EXPERIMENTS.pop("t-micro", None)


class TestMainDispatch:
    def test_xpr_verb_is_routed_from_the_main_cli(self, capsys):
        assert main(["xpr", "list"]) == 0
        out = capsys.readouterr().out
        assert "ref-quick: 6 trial(s)" in out
        assert "ref-full: 15 trial(s)" in out


class TestRunVerb:
    def test_dry_run_prints_stable_trial_ids(self, capsys):
        assert xpr_main(["run", "--experiment", "ref-quick",
                         "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "7f86aeae4624" in out
        assert "6 trial(s)" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert xpr_main(["run", "--experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_records_and_gate_passes(
        self, micro_experiment, tmp_path, capsys
    ):
        store_path = tmp_path / "t.jsonl"
        args = ["--experiment", micro_experiment, "--store", str(store_path)]
        # first run: everything is new; gate has nothing to compare
        assert xpr_main(["run", *args]) == 0
        assert "2/2 trial(s) ok" in capsys.readouterr().out
        assert xpr_main(["gate", "--store", str(store_path)]) == 0
        assert "2 new trial(s)" in capsys.readouterr().out
        # second run: the structural metrics are deterministic, so the
        # gate now compares and passes
        assert xpr_main(["run", *args]) == 0
        capsys.readouterr()
        assert xpr_main(["gate", "--store", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "gate: PASS" in out
        assert "0 regression(s)" in out
        records = TrajectoryStore(store_path).records()
        assert len(records) == 4
        assert all(r.status == "ok" for r in records)
        assert all("elapsed_s" in r.metrics for r in records)


class TestReportVerb:
    def test_report_writes_markdown_file(
        self, micro_experiment, tmp_path, capsys
    ):
        store_path = tmp_path / "t.jsonl"
        assert xpr_main(["run", "--experiment", micro_experiment,
                         "--store", str(store_path)]) == 0
        out_path = tmp_path / "report.md"
        assert xpr_main(["report", "--store", str(store_path),
                         "--output", str(out_path)]) == 0
        text = out_path.read_text()
        assert text.startswith("# xpr trajectory report")
        assert "t-micro" in text

    def test_html_format(self, tmp_path, capsys):
        assert xpr_main(["report", "--store", str(tmp_path / "none.jsonl"),
                         "--format", "html"]) == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")
