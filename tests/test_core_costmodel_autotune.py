"""Tests for the Table-1 cost model and the hyperparameter autotuner."""

import pytest

from repro.cluster.cufft_model import CufftWorkspaceModel
from repro.cluster.device import V100_16GB, V100_32GB
from repro.core.autotune import autotune
from repro.core.costmodel import (
    MemoryFootprint,
    memory_local_fft_bytes,
    memory_traditional_fft_bytes,
    table1_rows,
)
from repro.core.policy import SamplingPolicy
from repro.errors import ConfigurationError

GIB = 2**30


class TestTable1:
    def test_traditional_formula(self):
        assert memory_traditional_fft_bytes(1024) == 8 * 1024**3

    def test_local_formula(self):
        assert memory_local_fft_bytes(1024, 128) == 8 * 1024 * 1024 * 128

    def test_paper_values_exact(self):
        """All eight Table 1 rows reproduce exactly in GiB."""
        expected = {
            (1024, 128): (8, 1),
            (1024, 512): (8, 4),
            (2048, 128): (64, 4),
            (2048, 512): (64, 16),
            (4096, 128): (512, 16),
            (4096, 512): (512, 64),
            (8192, 64): (4096, 32),
            (8192, 128): (4096, 64),
        }
        for n, k, trad, ours in table1_rows():
            exp_trad, exp_ours = expected[(n, k)]
            assert trad == pytest.approx(exp_trad)
            assert ours == pytest.approx(exp_ours)

    def test_ours_always_less(self):
        for _n, _k, trad, ours in table1_rows():
            assert ours < trad

    def test_k_gt_n_rejected(self):
        with pytest.raises(ConfigurationError):
            memory_local_fft_bytes(64, 128)


class TestMemoryFootprint:
    def test_from_flat_rate_components(self):
        fp = MemoryFootprint.from_flat_rate(64, 16, 4)
        assert fp.slab_bytes == 16 * 64 * 64 * 16
        assert fp.total_bytes > fp.slab_bytes

    def test_from_pattern_matches_axis_sets(self):
        pol = SamplingPolicy.flat_rate(4)
        pat = pol.pattern_for(32, 8, (8, 8, 8))
        fp = MemoryFootprint.from_pattern(pat, 8)
        sz = len(pat.axis_coordinate_set(2))
        assert fp.z_sampled_bytes == 16 * 32 * 32 * sz

    def test_total_gib(self):
        fp = MemoryFootprint.from_flat_rate(1024, 128, 8)
        assert fp.total_gib == pytest.approx(fp.total_bytes / GIB)


class TestAutotune:
    def test_returns_feasible_best(self):
        res = autotune(
            1024,
            V100_32GB,
            k_candidates=[32, 64, 128, 256],
            r_candidates=[16, 32],
        )
        assert res.best is not None
        assert res.best.fits
        model = CufftWorkspaceModel()
        assert model.fits(1024, res.best.k, res.best.r, V100_32GB.memory_bytes)

    def test_best_is_fastest_feasible(self):
        res = autotune(512, V100_16GB, [16, 32, 64], [8, 16])
        feasible = res.feasible()
        assert res.best.modeled_time_s == min(e.modeled_time_s for e in feasible)

    def test_oversized_k_excluded(self):
        res = autotune(2048, V100_16GB, [512], [16])
        assert res.best is None or res.best.k != 512 or res.best.fits

    def test_error_budget_filters(self):
        res = autotune(
            256,
            V100_32GB,
            [32],
            [4, 8],
            error_oracle=lambda k, r: 0.01 if r == 4 else 0.99,
            error_budget=0.03,
        )
        assert res.best is not None
        assert res.best.r == 4

    def test_no_feasible_returns_none(self):
        res = autotune(
            256,
            V100_32GB,
            [32],
            [4],
            error_oracle=lambda k, r: 1.0,
            error_budget=0.03,
        )
        assert res.best is None
        assert len(res.evaluations) == 1

    def test_k_not_dividing_n_skipped(self):
        res = autotune(100, V100_32GB, [32], [4])
        assert res.best is None
        assert res.evaluations == ()

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            autotune(256, V100_32GB, [], [4])

    def test_batch_candidates_swept(self):
        res = autotune(256, V100_32GB, [32], [4], batch_candidates=[256, 1024])
        assert len(res.evaluations) == 2
        assert res.best.batch == 1024  # larger batch is faster in the model
