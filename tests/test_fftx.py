"""Tests for the mini-FFTX DSL: iodims, callbacks, sub-plans, composition,
execution, optimization, and the Fig 5 MASSIF plan."""

import numpy as np
import pytest

from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.errors import ConfigurationError, PlanError
from repro.fftx import (
    ExecutionStats,
    FFTX_MODE_OBSERVE,
    IODim,
    callback_registry,
    fftx_execute,
    fftx_init,
    fftx_plan_compose,
    fftx_shutdown,
    massif_convolution_plan,
    optimize_plan,
    plan_guru_dft_c2r,
    plan_guru_dft_r2c,
    plan_guru_pointwise_c2c,
    register_callback,
)
from repro.fftx.modes import current_env
from repro.kernels.gaussian import GaussianKernel
from repro.util.arrays import embed_subcube


class TestIODim:
    def test_defaults_full_axis(self):
        d = IODim(n=16)
        assert d.extent == 16
        assert not d.is_pruned

    def test_pruned(self):
        d = IODim(n=16, data_extent=4, offset=2)
        assert d.is_pruned

    def test_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            IODim(n=8, data_extent=4, offset=6)

    def test_rejects_bad_extent(self):
        with pytest.raises(ConfigurationError):
            IODim(n=8, data_extent=0)


class TestCallbacks:
    def test_library_callbacks_registered(self):
        reg = callback_registry()
        assert {"complex_scaling", "adaptive_sampling", "copy_offset"} <= set(reg)

    def test_register_custom(self):
        register_callback("double_it", lambda x: 2 * x)
        assert "double_it" in callback_registry()

    def test_register_non_callable(self):
        with pytest.raises(ConfigurationError):
            register_callback("bad", 42)


class TestModes:
    def test_init_shutdown_cycle(self):
        env = fftx_init(FFTX_MODE_OBSERVE)
        assert env.flags & FFTX_MODE_OBSERVE
        assert current_env() is env
        fftx_shutdown()
        assert current_env() is None

    def test_double_init_rejected(self):
        fftx_init()
        try:
            with pytest.raises(ConfigurationError):
                fftx_init()
        finally:
            fftx_shutdown()

    def test_shutdown_without_init(self):
        with pytest.raises(ConfigurationError):
            fftx_shutdown()


class TestSubPlans:
    def test_r2c_equals_dense_fft(self, rng):
        n, k = 16, 4
        sub = rng.standard_normal((k, k, k))
        dims = tuple(IODim(n=n, data_extent=k, offset=2) for _ in range(3))
        plan = plan_guru_dft_r2c(dims, "in", "out")
        env = {"in": sub}
        plan.apply(env)
        ref = np.fft.fftn(embed_subcube(sub, (n, n, n), (2, 2, 2)))
        np.testing.assert_allclose(env["out"], ref, atol=1e-8)

    def test_r2c_shape_mismatch(self, rng):
        dims = tuple(IODim(n=8, data_extent=2) for _ in range(3))
        plan = plan_guru_dft_r2c(dims, "in", "out")
        with pytest.raises(PlanError):
            plan.apply({"in": np.zeros((3, 3, 3))})

    def test_r2c_needs_three_dims(self):
        with pytest.raises(ConfigurationError):
            plan_guru_dft_r2c([IODim(n=8)], "in", "out")

    def test_pointwise_multiplies(self, rng):
        spec = rng.standard_normal((4, 4, 4))
        plan = plan_guru_pointwise_c2c("a", "b", kernel=spec)
        x = rng.standard_normal((4, 4, 4)) + 0j
        env = {"a": x}
        plan.apply(env)
        np.testing.assert_allclose(env["b"], x * spec, atol=1e-12)

    def test_c2r_partial_inverse(self, rng):
        spec = np.fft.fftn(rng.standard_normal((8, 8, 8)))
        coords = ([0, 3, 7], [1, 2], [4])
        plan = plan_guru_dft_c2r("s", "box", coords)
        env = {"s": spec}
        plan.apply(env)
        full = np.real(np.fft.ifftn(spec))
        expected = full[np.ix_(*coords)]
        np.testing.assert_allclose(env["box"], expected, atol=1e-10)

    def test_missing_buffer(self):
        plan = plan_guru_pointwise_c2c("missing", "out", kernel=np.ones(2))
        with pytest.raises(PlanError):
            plan.apply({})


class TestCompose:
    def test_dataflow_validation(self):
        p1 = plan_guru_pointwise_c2c("input", "a", kernel=np.ones(2))
        p2 = plan_guru_pointwise_c2c("a", "output", kernel=np.ones(2))
        plan = fftx_plan_compose([p1, p2])
        assert plan.num_subplans == 2

    def test_disconnected_chain_rejected(self):
        p1 = plan_guru_pointwise_c2c("input", "a", kernel=np.ones(2))
        p2 = plan_guru_pointwise_c2c("nope", "output", kernel=np.ones(2))
        with pytest.raises(PlanError):
            fftx_plan_compose([p1, p2])

    def test_missing_output_rejected(self):
        p1 = plan_guru_pointwise_c2c("input", "a", kernel=np.ones(2))
        with pytest.raises(PlanError):
            fftx_plan_compose([p1], output_name="other")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fftx_plan_compose([])


class TestMassifPlan:
    @pytest.fixture
    def setup(self, rng):
        n, k = 16, 4
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        sub = rng.standard_normal((k, k, k))
        return n, k, spec, sub

    def test_matches_local_convolution(self, setup):
        n, k, spec, sub = setup
        pol = SamplingPolicy.flat_rate(2)
        plan, pattern = massif_convolution_plan(n, k, (4, 8, 0), spec, policy=pol)
        out = fftx_execute(plan, sub)
        ref = LocalConvolution(n, spec, pol).convolve(sub, (4, 8, 0))
        np.testing.assert_allclose(out.values, ref.values, atol=1e-10)
        assert out.pattern.sample_count == ref.pattern.sample_count

    def test_plan_reusable(self, setup, rng):
        """'The plan can be executed more than once.'"""
        n, k, spec, sub = setup
        plan, _ = massif_convolution_plan(
            n, k, (0, 0, 0), spec, policy=SamplingPolicy.flat_rate(2)
        )
        out1 = fftx_execute(plan, sub)
        sub2 = rng.standard_normal((k, k, k))
        out2 = fftx_execute(plan, sub2)
        assert not np.allclose(out1.values, out2.values)
        out1b = fftx_execute(plan, sub)
        np.testing.assert_allclose(out1.values, out1b.values, atol=1e-14)

    def test_kernel_shape_check(self):
        with pytest.raises(ConfigurationError):
            massif_convolution_plan(16, 4, (0, 0, 0), np.zeros((8, 8, 8)))

    def test_optimizer_preserves_semantics(self, setup):
        n, k, spec, sub = setup
        pol = SamplingPolicy.flat_rate(2)
        plan, _ = massif_convolution_plan(n, k, (4, 4, 4), spec, policy=pol)
        optimized, report = optimize_plan(plan)
        out_a = fftx_execute(plan, sub)
        out_b = fftx_execute(optimized, sub)
        np.testing.assert_allclose(out_a.values, out_b.values, atol=1e-12)
        assert report.fused_pairs == [("dft_r2c", "pointwise_c2c")]
        assert optimized.num_subplans == plan.num_subplans - 1

    def test_optimizer_reports_costs(self, setup):
        n, k, spec, _sub = setup
        plan, _ = massif_convolution_plan(
            n, k, (0, 0, 0), spec, policy=SamplingPolicy.flat_rate(2)
        )
        _, report = optimize_plan(plan)
        assert report.total_flops > 0
        assert 0 <= report.workspace_savings < 1

    def test_observe_mode_records_stats(self, setup):
        n, k, spec, sub = setup
        plan, _ = massif_convolution_plan(
            n, k, (0, 0, 0), spec, policy=SamplingPolicy.flat_rate(2)
        )
        stats = ExecutionStats()
        fftx_execute(plan, sub, stats=stats)
        assert len(stats.steps) == 4
        assert stats.total_seconds > 0
        kinds = [k_ for k_, _s, _b in stats.steps]
        assert kinds == ["dft_r2c", "pointwise_c2c", "dft_c2r", "copy"]
