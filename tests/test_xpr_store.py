"""Trajectory store: round-trips, append-only-ness, the shared bench schema.

Also covers seeding from the committed BENCH_*.json reports — the path
that gave the repository's trajectory its day-one baseline.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.xpr.store import (
    BENCH_ENVELOPE_KEYS,
    TrajectoryStore,
    TrialRecord,
    bench_envelope,
    seed_from_bench_files,
    write_bench,
)

REPO = Path(__file__).parent.parent


def record(trial_id="aaa111bbb222", **kwargs):
    defaults = dict(
        experiment="exp",
        trial_id=trial_id,
        git_rev="abc123",
        ts="2026-01-01T00:00:00+00:00",
        status="ok",
        params={"mode": "serial", "n": 32, "k": 8},
        metrics={"value": 1.5},
    )
    defaults.update(kwargs)
    return TrialRecord(**defaults)


class TestRoundTrip:
    def test_append_then_read_back(self, tmp_path):
        store = TrajectoryStore(tmp_path / "t.jsonl")
        original = record(error="why not")
        store.append(original)
        (loaded,) = store.records()
        assert loaded == original

    def test_missing_file_is_an_empty_trajectory(self, tmp_path):
        store = TrajectoryStore(tmp_path / "absent.jsonl")
        assert store.records() == []
        assert store.experiments() == []

    def test_extend_preserves_append_order(self, tmp_path):
        store = TrajectoryStore(tmp_path / "t.jsonl")
        store.extend([record(trial_id=f"id{i:010d}") for i in range(3)])
        store.append(record(trial_id="id0000000003"))
        ids = [r.trial_id for r in store.records()]
        assert ids == [f"id{i:010d}" for i in range(4)]

    def test_lines_are_one_compact_json_object_each(self, tmp_path):
        store = TrajectoryStore(tmp_path / "t.jsonl")
        store.extend([record(), record(trial_id="ccc333ddd444")])
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert ": " not in line  # compact separators
            assert json.loads(line)["schema"] == 1

    def test_malformed_line_fails_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        store = TrajectoryStore(path)
        store.append(record())
        with path.open("a") as fh:
            fh.write("{not json\n")
        with pytest.raises(ConfigurationError, match=r"t\.jsonl:2"):
            store.records()

    def test_missing_required_key_fails_loudly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"experiment": "exp"}\n')
        with pytest.raises(ConfigurationError, match="trial_id"):
            TrajectoryStore(path).records()

    def test_history_filters_by_experiment_and_trial(self, tmp_path):
        store = TrajectoryStore(tmp_path / "t.jsonl")
        store.extend(
            [
                record(trial_id="one111111111"),
                record(trial_id="two222222222"),
                record(trial_id="one111111111", experiment="other"),
                record(trial_id="one111111111", metrics={"value": 2.0}),
            ]
        )
        history = store.history("exp", "one111111111")
        assert [r.metrics["value"] for r in history] == [1.5, 2.0]
        assert store.experiments() == ["exp", "other"]


class TestBenchSchema:
    def test_envelope_fills_environment_fields(self):
        doc = bench_envelope(
            "demo", n=32, k=8, repeats=3, results={"a": {}}, sigma=2.0
        )
        assert BENCH_ENVELOPE_KEYS <= set(doc)
        assert doc["cpu_count"] >= 1
        assert doc["python"].count(".") == 2
        assert doc["sigma"] == 2.0  # extras ride along

    def test_write_bench_rejects_partial_envelopes(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cpu_count"):
            write_bench({"bench": "demo"}, tmp_path / "out.json")

    def test_write_bench_round_trips(self, tmp_path):
        doc = bench_envelope("demo", n=32, k=8, repeats=1, results={})
        out = write_bench(doc, tmp_path / "out.json")
        assert json.loads(out.read_text()) == doc


class TestSeeding:
    def test_seed_flattens_nested_numeric_leaves(self, tmp_path):
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(
            json.dumps(
                {
                    "bench": "demo",
                    "n": 32,
                    "k": 8,
                    "results": {
                        "cfg": {
                            "median_s": 0.5,
                            "bitwise": True,
                            "times_s": [0.4, 0.5],  # lists are skipped
                            "copies": {"total_bytes": 0},
                        }
                    },
                }
            )
        )
        store = TrajectoryStore(tmp_path / "t.jsonl")
        (seeded,) = seed_from_bench_files(
            store, [bench], git_rev="abc", ts="2026-01-01T00:00:00+00:00"
        )
        assert seeded.experiment == "bench-demo"
        assert seeded.params == {
            "bench": "demo", "config": "cfg", "n": 32, "k": 8,
        }
        assert seeded.metrics == {
            "median_s": 0.5, "bitwise": 1.0, "copies.total_bytes": 0.0,
        }

    def test_reseeding_lands_on_the_same_trial_ids(self, tmp_path):
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(
            json.dumps(
                {"bench": "demo", "n": 32, "k": 8,
                 "results": {"cfg": {"median_s": 0.5}}}
            )
        )
        store = TrajectoryStore(tmp_path / "t.jsonl")
        first = seed_from_bench_files(store, [bench])
        second = seed_from_bench_files(store, [bench])
        assert [r.trial_id for r in first] == [r.trial_id for r in second]
        assert len(store.history("bench-demo", first[0].trial_id)) == 2

    def test_seed_rejects_reports_without_results(self, tmp_path):
        bench = tmp_path / "BENCH_bad.json"
        bench.write_text('{"bench": "bad"}')
        with pytest.raises(ConfigurationError, match="results"):
            seed_from_bench_files(
                TrajectoryStore(tmp_path / "t.jsonl"), [bench]
            )

    def test_committed_bench_reports_seed_cleanly(self, tmp_path):
        # The five committed BENCH_*.json files must stay seedable: they
        # are the provenance of the committed TRAJECTORY.jsonl baseline.
        paths = sorted(REPO.glob("BENCH_*.json"))
        assert len(paths) == 5
        store = TrajectoryStore(tmp_path / "t.jsonl")
        records = seed_from_bench_files(store, paths)
        # 21 = the historical 20 + the pool_backed serve A/B row
        assert len(records) == 21
        assert {r.experiment for r in records} == {
            "bench-dist", "bench-pipeline", "bench-pool",
            "bench-serialize", "bench-serve",
        }
