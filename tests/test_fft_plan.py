"""Tests for FFT plan objects."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.fft.plan import FFTPlan, plan_fft3, plan_pruned_conv
from repro.fft.pruned import slab_from_subcube


class TestPlanFFT3:
    def test_executes_forward(self, rng):
        x = rng.standard_normal((8, 8, 8))
        plan = plan_fft3(8)
        np.testing.assert_allclose(plan.execute(x), np.fft.fftn(x), atol=1e-8)

    def test_executes_inverse(self, rng):
        x = rng.standard_normal((8, 8, 8)) + 0j
        plan = plan_fft3(8, inverse=True)
        np.testing.assert_allclose(plan.execute(x), np.fft.ifftn(x), atol=1e-8)

    def test_workspace_estimate(self):
        assert plan_fft3(64).workspace_bytes == 64**3 * 16

    def test_shape_mismatch_raises(self):
        with pytest.raises(PlanError):
            plan_fft3(8).execute(np.zeros((4, 4, 4)))


class TestPlanPrunedConv:
    def test_executes_slab(self, rng):
        sub = rng.standard_normal((4, 4, 4))
        plan = plan_pruned_conv(16, 4, corner=(2, 3, 1))
        got = plan.execute(sub)
        np.testing.assert_allclose(
            got, slab_from_subcube(sub, (2, 3, 1), 16), atol=1e-10
        )

    def test_workspace_includes_slab_and_batch(self):
        plan = plan_pruned_conv(64, 8, batch=32)
        assert plan.workspace_bytes == 16 * (64 * 64 * 8) + 16 * 32 * 64

    def test_rejects_k_gt_n(self):
        with pytest.raises(PlanError):
            plan_pruned_conv(8, 16)

    def test_wrong_sub_shape_raises(self):
        plan = plan_pruned_conv(16, 4)
        with pytest.raises(PlanError):
            plan.execute(np.zeros((5, 5, 5)))


class TestUnknownKind:
    def test_raises(self):
        plan = FFTPlan(kind="bogus", shape=(4, 4, 4))
        with pytest.raises(PlanError):
            plan.execute(np.zeros((4, 4, 4)))
