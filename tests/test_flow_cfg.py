"""CFG construction and dataflow-fixpoint tests for repro.analysis.flow.

Edge lists are pinned exactly for the canonical statement shapes —
branch diamonds, loops with break/continue, try/finally with the
duplicated finally suite, ``with``, exception handlers, and terminal
calls — so any change to the lowering is a visible diff here, not a
silent change in what the flow-sensitive rules prove.
"""

import ast

import pytest

from repro.analysis.flow import (
    ForwardDataflow,
    build_cfg,
    format_witness,
    functions_in,
    path_witness,
    stmt_expressions,
)


def cfg_of(src, name=None):
    tree = ast.parse(src)
    funcs = dict(functions_in(tree))
    fn = funcs[name] if name else next(iter(funcs.values()))
    return build_cfg(fn, name)


class TestCfgShapes:
    def test_if_else_diamond(self):
        cfg = cfg_of(
            "def diamond(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        assert cfg.edges() == [
            ("entry", "line 2: if x"),
            ("line 2: if x", "line 3: a = 1"),
            ("line 2: if x", "line 5: a = 2"),
            ("line 3: a = 1", "line 6: return a"),
            ("line 5: a = 2", "line 6: return a"),
            ("line 6: return a", "function exit"),
        ]

    def test_if_without_else_falls_through(self):
        cfg = cfg_of(
            "def maybe(x):\n"
            "    if x:\n"
            "        x += 1\n"
            "    return x\n"
        )
        edges = cfg.edges()
        assert ("line 2: if x", "line 4: return x") in edges  # false arm
        assert ("line 3: x += 1", "line 4: return x") in edges

    def test_loop_with_break_and_continue(self):
        cfg = cfg_of(
            "def loop(items):\n"
            "    total = 0\n"
            "    for item in items:\n"
            "        if item < 0:\n"
            "            break\n"
            "        if item == 0:\n"
            "            continue\n"
            "        total += item\n"
            "    return total\n"
        )
        assert cfg.edges() == [
            ("entry", "line 2: total = 0"),
            ("line 2: total = 0", "line 3: for item in items"),
            ("line 3: for item in items", "line 4: if item < 0"),
            ("line 3: for item in items", "line 9: return total"),
            ("line 4: if item < 0", "line 5: break"),
            ("line 4: if item < 0", "line 6: if item == 0"),
            ("line 5: break", "line 9: return total"),
            ("line 6: if item == 0", "line 7: continue"),
            ("line 6: if item == 0", "line 8: total += item"),
            ("line 7: continue", "line 3: for item in items"),
            ("line 8: total += item", "line 3: for item in items"),
            ("line 9: return total", "function exit"),
        ]

    def test_while_true_has_no_fallthrough_exit(self):
        cfg = cfg_of(
            "def forever(queue):\n"
            "    while True:\n"
            "        item = queue.get()\n"
            "        if item is None:\n"
            "            return item\n"
        )
        assert cfg.edges() == [
            ("entry", "line 2: while True"),
            ("line 2: while True", "line 3: item = queue.get()"),
            ("line 3: item = queue.get()", "line 4: if item is None"),
            ("line 4: if item is None", "line 2: while True"),
            ("line 4: if item is None", "line 5: return item"),
            ("line 5: return item", "function exit"),
        ]

    def test_try_finally_duplicates_finally_for_exceptional_path(self):
        cfg = cfg_of(
            "def guarded(path):\n"
            "    handle = open(path)\n"
            "    try:\n"
            "        data = handle.read()\n"
            "    finally:\n"
            "        handle.close()\n"
            "    return data\n"
        )
        # the finally suite appears on the normal path (-> return) AND on
        # the exceptional copy (-> function exit): a release inside
        # finally therefore kills leak facts on both
        assert cfg.edges() == [
            ("entry", "line 2: handle = open(path)"),
            ("line 2: handle = open(path)", "line 3: try"),
            ("line 3: try", "line 4: data = handle.read()"),
            ("line 4: data = handle.read()", "line 6: handle.close()"),
            ("line 6: handle.close()", "function exit"),
            ("line 6: handle.close()", "line 7: return data"),
            ("line 7: return data", "function exit"),
        ]

    def test_return_inside_try_routes_through_finally(self):
        cfg = cfg_of(
            "def early(res):\n"
            "    try:\n"
            "        return res.value\n"
            "    finally:\n"
            "        res.close()\n"
        )
        edges = cfg.edges()
        assert ("line 3: return res.value", "line 5: res.close()") in edges
        assert ("line 5: res.close()", "function exit") in edges
        # the return must NOT reach exit directly, skipping the finally
        assert ("line 3: return res.value", "function exit") not in edges

    def test_except_handler_and_raise(self):
        cfg = cfg_of(
            "def handled(sock):\n"
            "    try:\n"
            "        sock.send(b'x')\n"
            "    except OSError:\n"
            "        sock.close()\n"
            "        raise\n"
            "    return True\n"
        )
        assert cfg.edges() == [
            ("entry", "line 2: try"),
            ("line 2: try", "line 3: sock.send(b'x')"),
            ("line 3: sock.send(b'x')", "line 4: except OSError"),
            ("line 3: sock.send(b'x')", "line 7: return True"),
            ("line 4: except OSError", "line 5: sock.close()"),
            ("line 5: sock.close()", "line 6: raise"),
            ("line 6: raise", "function exit"),
            ("line 7: return True", "function exit"),
        ]

    def test_with_is_one_header_node(self):
        cfg = cfg_of(
            "def scoped(lock, state):\n"
            "    with lock:\n"
            "        state += 1\n"
            "    return state\n"
        )
        assert cfg.edges() == [
            ("entry", "line 2: with lock"),
            ("line 2: with lock", "line 3: state += 1"),
            ("line 3: state += 1", "line 4: return state"),
            ("line 4: return state", "function exit"),
        ]

    def test_terminal_call_has_no_successors(self):
        cfg = cfg_of(
            "def bails(code):\n"
            "    import os\n"
            "    if code:\n"
            "        os._exit(1)\n"
            "    return code\n"
        )
        edges = cfg.edges()
        assert not [e for e in edges if e[0] == "line 4: os._exit(1)"]
        assert ("line 3: if code", "line 5: return code") in edges

    def test_functions_in_yields_dotted_qualnames(self):
        tree = ast.parse(
            "class Outer:\n"
            "    def method(self):\n"
            "        def inner():\n"
            "            pass\n"
            "        return inner\n"
            "def top():\n"
            "    pass\n"
        )
        names = [name for name, _ in functions_in(tree)]
        assert names == ["Outer.method", "Outer.method.inner", "top"]

    def test_compound_headers_expose_only_their_own_expressions(self):
        stmt = ast.parse("if x:\n    y()\n").body[0]
        exprs = stmt_expressions(stmt)
        assert len(exprs) == 1
        assert isinstance(exprs[0], ast.Name)  # the test, never the body


class TestForwardDataflow:
    @staticmethod
    def _gen_kill(cfg, gens, kills):
        """transfer from {label-substring: facts} gen/kill tables."""

        def transfer(node, inp):
            out = set(inp)
            for probe, facts in kills.items():
                if probe in node.label:
                    out -= facts
            for probe, facts in gens.items():
                if probe in node.label:
                    out |= facts
            return frozenset(out)

        return transfer

    def test_may_union_keeps_fact_alive_on_one_path(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    r = acquire()\n"
            "    if x:\n"
            "        release(r)\n"
            "    return x\n"
        )
        transfer = self._gen_kill(
            cfg, {"acquire()": {"r"}}, {"release(r)": {"r"}}
        )
        result = ForwardDataflow(cfg, transfer, may=True).run()
        assert result.at(cfg.exit) == frozenset({"r"})

    def test_must_intersection_requires_every_path(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        fence()\n"
            "    execute()\n"
        )
        transfer = self._gen_kill(cfg, {"fence()": {"fenced"}}, {})
        result = ForwardDataflow(cfg, transfer, may=False).run()
        exec_ix = next(
            n.index for n in cfg.nodes if "execute()" in n.label
        )
        assert "fenced" not in result.at(exec_ix)

    def test_must_passes_when_fence_dominates(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    fence()\n"
            "    if x:\n"
            "        execute()\n"
            "    execute()\n"
        )
        transfer = self._gen_kill(cfg, {"fence()": {"fenced"}}, {})
        result = ForwardDataflow(cfg, transfer, may=False).run()
        for node in cfg.nodes:
            if "execute()" in node.label:
                assert "fenced" in result.at(node.index)

    def test_loop_fixpoint_terminates_and_propagates(self):
        cfg = cfg_of(
            "def f(items):\n"
            "    r = acquire()\n"
            "    for i in items:\n"
            "        use(i)\n"
            "    return r\n"
        )
        transfer = self._gen_kill(cfg, {"acquire()": {"r"}}, {})
        result = ForwardDataflow(cfg, transfer, may=True).run()
        assert result.at(cfg.exit) == frozenset({"r"})


class TestPathWitness:
    def test_witness_avoids_kill_nodes(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    r = acquire()\n"
            "    if x:\n"
            "        release(r)\n"
            "        return 1\n"
            "    return 0\n"
        )
        start = next(n.index for n in cfg.nodes if "acquire" in n.label)
        path = path_witness(
            cfg, start, cfg.exit, avoid=lambda n: "release" in n.label
        )
        labels = [n.label for n in path]
        assert labels[0].endswith("r = acquire()")
        assert labels[-1] == "function exit"
        assert not any("release" in lab for lab in labels)

    def test_witness_is_none_when_every_path_is_blocked(self):
        cfg = cfg_of(
            "def f():\n"
            "    r = acquire()\n"
            "    release(r)\n"
            "    return 1\n"
        )
        start = next(n.index for n in cfg.nodes if "acquire" in n.label)
        path = path_witness(
            cfg, start, cfg.exit, avoid=lambda n: "release" in n.label
        )
        assert path is None

    def test_format_witness_elides_long_paths(self):
        cfg = cfg_of(
            "def f():\n" + "".join(f"    x{i} = {i}\n" for i in range(20))
        )
        path = path_witness(cfg, cfg.entry, cfg.exit)
        text = format_witness(path)
        assert "..." in text
        assert text.endswith("function exit")
        assert text.count("->") < 12

    def test_witness_rendering_reads_like_source(self):
        cfg = cfg_of(
            "def f(flag):\n"
            "    sock = connect()\n"
            "    if flag:\n"
            "        return None\n"
            "    sock.close()\n"
            "    return True\n"
        )
        start = next(n.index for n in cfg.nodes if "connect" in n.label)
        path = path_witness(
            cfg, start, cfg.exit, avoid=lambda n: "close" in n.label
        )
        text = format_witness(path)
        assert text == (
            "line 2: sock = connect() -> line 3: if flag -> "
            "line 4: return None -> function exit"
        )


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
