"""Tests for the 1D FFT substrate: bitrev, radix2, bluestein, dispatch.

Cross-validation against numpy.fft plus property-based invariants
(linearity, Parseval, roundtrip) — the transforms everything else in the
library rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fft.bitrev import bit_reversal_permutation, bit_reverse_indices
from repro.fft.bluestein import fft_bluestein
from repro.fft.dft import fft1d, ifft1d
from repro.fft.radix2 import fft_pow2, ifft_pow2


class TestBitReversal:
    def test_n1(self):
        np.testing.assert_array_equal(bit_reversal_permutation(1), [0])

    def test_n8(self):
        np.testing.assert_array_equal(
            bit_reversal_permutation(8), [0, 4, 2, 6, 1, 5, 3, 7]
        )

    def test_is_permutation(self):
        perm = bit_reversal_permutation(64)
        assert sorted(perm) == list(range(64))

    def test_is_involution(self):
        perm = bit_reversal_permutation(32)
        np.testing.assert_array_equal(perm[perm], np.arange(32))

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            bit_reversal_permutation(12)

    def test_by_bits(self):
        np.testing.assert_array_equal(
            bit_reverse_indices(3), bit_reversal_permutation(8)
        )


class TestRadix2:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256])
    def test_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_pow2(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_inverse_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(ifft_pow2(x), np.fft.ifft(x), atol=1e-9)

    def test_batched(self, rng):
        x = rng.standard_normal((5, 3, 16)) + 1j * rng.standard_normal((5, 3, 16))
        np.testing.assert_allclose(fft_pow2(x), np.fft.fft(x, axis=-1), atol=1e-9)

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            fft_pow2(np.zeros(12, dtype=complex))

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(16, dtype=complex)
        x[0] = 1.0
        np.testing.assert_allclose(fft_pow2(x), np.ones(16), atol=1e-12)

    def test_does_not_mutate_input(self, rng):
        x = rng.standard_normal(8) + 0j
        saved = x.copy()
        fft_pow2(x)
        np.testing.assert_array_equal(x, saved)


class TestBluestein:
    @pytest.mark.parametrize("n", [1, 3, 5, 7, 12, 37, 100])
    def test_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-8)

    @pytest.mark.parametrize("n", [3, 37])
    def test_inverse_unnormalized(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        got = fft_bluestein(x, inverse=True) / n
        np.testing.assert_allclose(got, np.fft.ifft(x), atol=1e-8)

    def test_pow2_length_also_works(self, rng):
        x = rng.standard_normal(16) + 0j
        np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-8)


class TestDispatch:
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 24, 128])
    def test_fft1d_any_length(self, n, rng):
        x = rng.standard_normal((2, n)) + 1j * rng.standard_normal((2, n))
        np.testing.assert_allclose(fft1d(x), np.fft.fft(x, axis=-1), atol=1e-8)

    @pytest.mark.parametrize("axis", [0, 1, 2, -1])
    def test_axis_argument(self, axis, rng):
        x = rng.standard_normal((4, 6, 8)) + 0j
        np.testing.assert_allclose(
            fft1d(x, axis=axis), np.fft.fft(x, axis=axis), atol=1e-8
        )

    @pytest.mark.parametrize("n", [5, 16])
    def test_roundtrip(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(ifft1d(fft1d(x)), x, atol=1e-8)

    # -- property-based invariants --------------------------------------------
    @given(st.integers(min_value=1, max_value=64), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, n, seed):
        r = np.random.default_rng(seed)
        x = r.standard_normal(n) + 1j * r.standard_normal(n)
        y = r.standard_normal(n) + 1j * r.standard_normal(n)
        a, b = 2.5, -1.5 + 0.5j
        np.testing.assert_allclose(
            fft1d(a * x + b * y), a * fft1d(x) + b * fft1d(y), atol=1e-7
        )

    @given(st.integers(min_value=1, max_value=64), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_parseval(self, n, seed):
        r = np.random.default_rng(seed)
        x = r.standard_normal(n) + 1j * r.standard_normal(n)
        energy_time = np.sum(np.abs(x) ** 2)
        energy_freq = np.sum(np.abs(fft1d(x)) ** 2) / n
        assert energy_freq == pytest.approx(energy_time, rel=1e-8)

    @given(st.integers(min_value=1, max_value=64), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n, seed):
        r = np.random.default_rng(seed)
        x = r.standard_normal(n) + 1j * r.standard_normal(n)
        np.testing.assert_allclose(ifft1d(fft1d(x)), x, atol=1e-7)

    @given(st.integers(min_value=2, max_value=64), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_shift_theorem(self, n, seed):
        """Circular shift in time = linear phase in frequency."""
        r = np.random.default_rng(seed)
        x = r.standard_normal(n) + 1j * r.standard_normal(n)
        shift = int(r.integers(0, n))
        shifted = np.roll(x, shift)
        phase = np.exp(-2j * np.pi * shift * np.arange(n) / n)
        np.testing.assert_allclose(fft1d(shifted), fft1d(x) * phase, atol=1e-7)
