"""Tests for checkpointing and failure recovery."""

import numpy as np
import pytest

from repro.core.accumulate import accumulate_global
from repro.core.checkpoint import (
    checkpoint_from_bytes,
    checkpoint_to_bytes,
    recover_missing,
)
from repro.core.decomposition import DomainDecomposition
from repro.core.local_conv import LocalConvolution
from repro.core.pipeline import LowCommConvolution3D
from repro.core.policy import SamplingPolicy
from repro.errors import ConfigurationError
from repro.kernels.gaussian import GaussianKernel


@pytest.fixture
def run(rng):
    n, k = 16, 4
    spec = GaussianKernel(n=n, sigma=1.2).spectrum()
    pol = SamplingPolicy.flat_rate(2)
    field = np.zeros((n, n, n))
    field[2:14, 2:14, 2:14] = rng.standard_normal((12, 12, 12))
    pipe = LowCommConvolution3D(n, k, spec, pol, batch=64)
    result = pipe.run_serial(field)
    return n, k, spec, pol, field, pipe, result


class TestCheckpointRoundtrip:
    def test_all_fields_restored(self, run):
        *_rest, result = run
        blob = checkpoint_to_bytes(result.per_domain)
        restored = checkpoint_from_bytes(blob)
        assert set(restored) == {s.index for s, _f in result.per_domain}
        for sub, field in result.per_domain:
            np.testing.assert_array_equal(restored[sub.index].values, field.values)

    def test_float32_checkpoint_smaller(self, run):
        *_rest, result = run
        b64 = checkpoint_to_bytes(result.per_domain)
        b32 = checkpoint_to_bytes(result.per_domain, precision="float32")
        assert len(b32) < len(b64)

    def test_bad_magic(self):
        with pytest.raises(ConfigurationError):
            checkpoint_from_bytes(b"NOTACKPT" + b"\x00" * 16)

    def test_truncation_detected(self, run):
        *_rest, result = run
        blob = checkpoint_to_bytes(result.per_domain)
        with pytest.raises(ConfigurationError):
            checkpoint_from_bytes(blob[: len(blob) // 2])

    def test_empty_checkpoint(self):
        blob = checkpoint_to_bytes([])
        assert checkpoint_from_bytes(blob) == {}


class TestFailureRecovery:
    def test_recompute_only_missing(self, run):
        """Drop one rank's chunks from the checkpoint; recovery recomputes
        exactly those and the final result is identical."""
        n, k, spec, pol, field, pipe, result = run
        # simulate rank 1 of 3 dying: its round-robin chunks are lost
        lost = {s.index for s, _f in result.per_domain if s.index % 3 == 1}
        surviving = [
            (s, f) for s, f in result.per_domain if s.index not in lost
        ]
        blob = checkpoint_to_bytes(surviving)
        restored = checkpoint_from_bytes(blob)
        assert lost.isdisjoint(restored)

        decomp = DomainDecomposition(n, k)
        lc = LocalConvolution(n, spec, pol, batch=64)
        recovered = recover_missing(restored, decomp, field, lc, pol)
        assert {s.index for s, _f in recovered} == {
            s.index for s, _f in result.per_domain
        }
        total = accumulate_global([f for _s, f in recovered])
        np.testing.assert_allclose(total, result.approx, atol=1e-12)

    def test_full_checkpoint_recomputes_nothing(self, run):
        n, k, spec, pol, field, pipe, result = run
        blob = checkpoint_to_bytes(result.per_domain)
        restored = checkpoint_from_bytes(blob)

        calls = []
        lc = LocalConvolution(n, spec, pol, batch=64)
        original = lc.convolve

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        lc.convolve = counting  # type: ignore[method-assign]
        recover_missing(restored, DomainDecomposition(n, k), field, lc, pol)
        assert not calls


class TestCheckpointCorruption:
    """Hardening: corrupt blobs fail loudly with offset context."""

    def _blob(self, run):
        *_rest, result = run
        return checkpoint_to_bytes(result.per_domain)

    def test_roundtrip_then_truncated_entry_payload(self, run):
        blob = self._blob(run)
        assert checkpoint_from_bytes(blob)  # sanity: intact blob decodes
        with pytest.raises(ConfigurationError, match=r"offset \d+"):
            checkpoint_from_bytes(blob[:-7])

    def test_corrupt_entry_length_field(self, run):
        blob = bytearray(self._blob(run))
        # First entry header sits right after magic + count; its length
        # field is the second int64. Blow it up to an absurd value.
        offset = len(b"LC3DCKPT") + 8 + 8
        blob[offset : offset + 8] = (1 << 40).to_bytes(8, "little")
        with pytest.raises(ConfigurationError, match="declares"):
            checkpoint_from_bytes(bytes(blob))

    def test_garbage_entry_payload_not_struct_error(self, run):
        blob = bytearray(self._blob(run))
        # Zero out the serialized payload of the first entry (keeping its
        # declared length): the inner decoder must surface a
        # ConfigurationError with entry context, never struct.error or a
        # silent misparse.
        start = len(b"LC3DCKPT") + 8 + 16
        import struct as struct_mod

        _index, length = struct_mod.unpack_from("<qq", bytes(blob), len(b"LC3DCKPT") + 8)
        blob[start : start + length] = bytes(length)
        with pytest.raises(ConfigurationError, match="entry 0"):
            checkpoint_from_bytes(bytes(blob))

    def test_truncated_header_and_bad_magic(self):
        with pytest.raises(ConfigurationError, match="magic"):
            checkpoint_from_bytes(b"NOTACKPT" + b"\0" * 16)
        with pytest.raises(ConfigurationError, match="truncated checkpoint header"):
            checkpoint_from_bytes(b"LC3DCKPT" + b"\0" * 3)

    def test_trailing_garbage_detected(self, run):
        blob = self._blob(run)
        with pytest.raises(ConfigurationError, match="trailing"):
            checkpoint_from_bytes(blob + b"\xff" * 4)

    def test_negative_count_detected(self, run):
        blob = bytearray(self._blob(run))
        offset = len(b"LC3DCKPT")
        blob[offset : offset + 8] = (-1).to_bytes(8, "little", signed=True)
        with pytest.raises(ConfigurationError, match="negative count"):
            checkpoint_from_bytes(bytes(blob))
