"""Tests for content-adaptive decomposition and the worker pool."""

import numpy as np
import pytest

from repro.cluster.device import V100_32GB
from repro.core.adaptive import (
    AdaptiveConvolution,
    decompose_by_content,
)
from repro.core.decomposition import DomainDecomposition
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_convolve
from repro.core.worker import Worker, WorkerPool
from repro.errors import ConfigurationError
from repro.kernels.gaussian import GaussianKernel
from repro.util.arrays import l2_relative_error


class TestDecomposeByContent:
    def test_zero_field_empty(self):
        assert decompose_by_content(np.zeros((16, 16, 16)), k_max=4) == []

    def test_dense_field_tiles_fully(self, rng):
        field = rng.standard_normal((16, 16, 16)) + 10.0  # nowhere zero
        subs = decompose_by_content(field, k_max=4)
        assert sum(s.size**3 for s in subs) == 16**3
        assert all(s.size <= 4 for s in subs)

    def test_sparse_field_skips_zero_blocks(self):
        field = np.zeros((16, 16, 16))
        field[:4, :4, :4] = 1.0
        subs = decompose_by_content(field, k_max=4)
        assert len(subs) == 1
        assert subs[0].corner == (0, 0, 0)
        assert subs[0].size == 4

    def test_mixed_sizes(self):
        """A big homogeneous block stays large only if <= k_max; unsplit
        blocks at different levels emerge from localized support."""
        field = np.zeros((32, 32, 32))
        field[:16, :16, :16] = 1.0  # occupies one 16-cube exactly
        subs = decompose_by_content(field, k_max=16)
        assert len(subs) == 1
        assert subs[0].size == 16

    def test_threshold(self):
        field = np.full((8, 8, 8), 1e-9)
        field[0, 0, 0] = 1.0
        subs = decompose_by_content(field, k_max=2, threshold=1e-6)
        assert len(subs) == 1
        assert subs[0].corner == (0, 0, 0)

    def test_blocks_disjoint(self, rng):
        field = (rng.random((16, 16, 16)) > 0.7).astype(float)
        subs = decompose_by_content(field, k_max=4)
        seen = np.zeros((16, 16, 16), dtype=int)
        for s in subs:
            seen[s.slices()] += 1
        assert seen.max() <= 1

    def test_k_min_validated(self):
        with pytest.raises(ConfigurationError):
            decompose_by_content(np.ones((8, 8, 8)), k_max=2, k_min=4)

    def test_negative_threshold(self):
        with pytest.raises(ConfigurationError):
            decompose_by_content(np.ones((8, 8, 8)), k_max=4, threshold=-1)


class TestAdaptiveConvolution:
    def test_lossless_matches_reference(self, rng):
        n = 16
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        field = np.zeros((n, n, n))
        field[2:6, 2:6, 2:6] = rng.standard_normal((4, 4, 4))
        conv = AdaptiveConvolution(
            n, spec, SamplingPolicy.flat_rate(1), k_max=4, batch=64
        )
        res = conv.run(field)
        np.testing.assert_allclose(
            res.approx, reference_convolve(field, spec), atol=1e-9
        )

    def test_sparse_input_processes_less(self):
        n = 32
        spec = GaussianKernel(n=n, sigma=1.5).spectrum()
        field = np.zeros((n, n, n))
        field[:8, :8, :8] = 1.0
        conv = AdaptiveConvolution(
            n, spec, SamplingPolicy.flat_rate(2), k_max=8, batch=256
        )
        res = conv.run(field)
        assert res.skipped_volume == n**3 - 8**3
        assert len(res.subdomains) == 1
        exact = reference_convolve(field, spec)
        assert l2_relative_error(res.approx, exact) < 0.05

    def test_fewer_domains_than_regular(self, rng):
        """On sparse input, adaptive processes fewer chunks than the regular
        decomposition at the adaptive k_max."""
        n = 32
        spec = GaussianKernel(n=n, sigma=1.5).spectrum()
        field = np.zeros((n, n, n))
        field[0:16, 0:16, 0:16] = 1.0
        conv = AdaptiveConvolution(
            n, spec, SamplingPolicy.flat_rate(2), k_max=8, batch=256
        )
        res = conv.run(field)
        regular_count = sum(
            1
            for s in DomainDecomposition(n, 8)
            if np.any(field[s.slices()])
        )
        assert len(res.subdomains) <= regular_count

    def test_empty_input(self):
        n = 16
        spec = GaussianKernel(n=n, sigma=1.0).spectrum()
        conv = AdaptiveConvolution(n, spec, SamplingPolicy.flat_rate(2), k_max=4)
        res = conv.run(np.zeros((n, n, n)))
        assert res.total_samples == 0
        assert np.all(res.approx == 0)


class TestWorkerPool:
    def _chunks(self, n=16, k=4, count=6, rng=None):
        rng = rng or np.random.default_rng(0)
        d = DomainDecomposition(n, k)
        chunks = []
        for i in range(count):
            sub = d.subdomain(i)
            chunks.append((sub, rng.standard_normal((k, k, k))))
        return n, chunks

    def test_all_chunks_processed(self):
        n, chunks = self._chunks()
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        pool = WorkerPool(3, n, spec, SamplingPolicy.flat_rate(2), V100_32GB, batch=64)
        res = pool.run(chunks)
        assert res.total_chunks == len(chunks)
        assert len(res.fields) == len(chunks)

    def test_load_balanced(self):
        n, chunks = self._chunks(count=8)
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        pool = WorkerPool(4, n, spec, SamplingPolicy.flat_rate(2), V100_32GB, batch=64)
        res = pool.run(chunks)
        counts = [s.chunks_processed for s in res.worker_stats.values()]
        assert max(counts) - min(counts) <= 1

    def test_makespan_shrinks_with_more_workers(self):
        n, chunks = self._chunks(count=8)
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        m1 = WorkerPool(1, n, spec, SamplingPolicy.flat_rate(2), V100_32GB, batch=64).run(chunks).makespan_s
        m4 = WorkerPool(4, n, spec, SamplingPolicy.flat_rate(2), V100_32GB, batch=64).run(chunks).makespan_s
        assert m4 == pytest.approx(m1 / 4, rel=0.01)

    def test_results_match_direct_pipeline(self):
        n, chunks = self._chunks(count=4)
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        pol = SamplingPolicy.flat_rate(2)
        pool = WorkerPool(2, n, spec, pol, V100_32GB, batch=64)
        res = pool.run(chunks)
        from repro.core.local_conv import LocalConvolution

        lc = LocalConvolution(n, spec, pol, batch=64)
        for (sub, block), (_sub2, got) in zip(chunks, res.fields):
            expected = lc.convolve(block, sub.corner)
            np.testing.assert_allclose(got.values, expected.values, atol=1e-12)

    def test_memory_enforced(self):
        n, chunks = self._chunks()
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        worker = Worker(0, n, spec, SamplingPolicy.flat_rate(2), V100_32GB, batch=64)
        sub, block = chunks[0]
        worker.process(sub, block)
        assert worker.stats.peak_memory_bytes > 0
        assert worker.memory.current_bytes == 0

    def test_zero_workers_rejected(self):
        spec = GaussianKernel(n=8, sigma=1.0).spectrum()
        with pytest.raises(ConfigurationError):
            WorkerPool(0, 8, spec, SamplingPolicy.flat_rate(2), V100_32GB)
