"""Tests for the real-transform convolution path and trade-off sweeps."""

import numpy as np
import pytest

from repro.analysis.sweeps import error_compression_sweep, pareto_front, TradeoffPoint
from repro.core.reference import reference_convolve
from repro.errors import ShapeError
from repro.fft.realconv import half_spectrum, half_spectrum_bytes, rfft_convolve
from repro.kernels.gaussian import GaussianKernel


class TestRealConvolution:
    def test_matches_complex_path(self, rng):
        n = 16
        spec = GaussianKernel(n=n, sigma=1.5).spectrum()
        field = rng.standard_normal((n, n, n))
        full = reference_convolve(field, spec)
        half = rfft_convolve(field, half_spectrum(spec))
        np.testing.assert_allclose(half, full, atol=1e-10)

    def test_half_spectrum_shape(self):
        spec = GaussianKernel(n=16, sigma=1.0).spectrum()
        assert half_spectrum(spec).shape == (16, 16, 9)

    def test_half_spectrum_saves_half(self):
        assert half_spectrum_bytes(64) < 16 * 64**3 * 0.6

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            rfft_convolve(np.zeros((4, 4)), np.zeros((4, 4, 3)))
        with pytest.raises(ShapeError):
            rfft_convolve(np.zeros((4, 4, 4)), np.zeros((4, 4, 4)))


class TestSweeps:
    @pytest.fixture(scope="class")
    def points(self):
        return error_compression_sweep(
            n=32, k=8, sigma=1.5, r_values=(2, 4), include_flat=True
        )

    def test_sweep_covers_configs(self, points):
        assert len(points) == 4  # 2 rates x (banded, flat)
        assert {p.r_far for p in points} == {2, 4}

    def test_error_grows_with_rate_flat(self, points):
        flat = sorted((p for p in points if p.flat), key=lambda p: p.r_far)
        assert flat[0].l2_error <= flat[1].l2_error

    def test_samples_shrink_with_rate_flat(self, points):
        flat = sorted((p for p in points if p.flat), key=lambda p: p.r_far)
        assert flat[0].samples > flat[1].samples

    def test_compression_ratio_consistent(self, points):
        for p in points:
            assert p.compression_ratio == pytest.approx(32**3 / p.samples)

    def test_modeled_time_positive(self, points):
        assert all(p.modeled_time_s > 0 for p in points)

    def test_pareto_front_nonempty_subset(self, points):
        front = pareto_front(points)
        assert front
        assert set(id(p) for p in front) <= set(id(p) for p in points)

    def test_pareto_front_sorted_and_undominated(self, points):
        front = pareto_front(points)
        samples = [p.samples for p in front]
        assert samples == sorted(samples)
        # along the front, fewer samples must mean more error
        for a, b in zip(front, front[1:]):
            assert a.l2_error >= b.l2_error

    def test_pareto_dominance_logic(self):
        mk = lambda e, s: TradeoffPoint(2, False, s, 1.0, e, 1.0)
        pts = [mk(0.1, 100), mk(0.2, 200), mk(0.05, 300)]
        front = pareto_front(pts)
        # (0.2, 200) dominated by (0.1, 100)
        assert all(not (p.l2_error == 0.2) for p in front)
        assert len(front) == 2
