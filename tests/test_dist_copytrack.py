"""Copy accounting: CopyLedger semantics + the zero-copy acceptance bar.

The tentpole invariant, as tests: at the reference shape (n=32, k=8,
P=4, tcp) the refactored data plane copies **zero** hot-path bytes per
exchanged field (``wire.*`` sites), versus the pre-refactor pipeline's
serialize-join plus per-peer frame joins — a >= 90% reduction, measured
with the same instrumented legacy entry points rather than assumed.
Results stay bitwise identical to ``run_serial`` and the WireLedger
stays within 1% of the Eq 6 prediction.
"""

import numpy as np
import pytest

from repro.dist import copytrack as dist_copytrack
from repro.dist.collectives import TAG_EXCHANGE
from repro.dist.launcher import default_spectrum, dist_run
from repro.dist.wire import Frame, FrameKind, encode_frame
from repro.dist.worker import DistConfig, build_pipeline, composite_field
from repro.octree.serialize import serialize_compressed
from repro.util import copytrack

#: the acceptance shape from the issue: n=32, k=8, P=4 over TCP
REFERENCE = dict(n=32, k=8, sigma=2.0, policy="flat:2")


@pytest.fixture(autouse=True)
def _fresh_ledger():
    copytrack.reset()
    yield
    copytrack.reset()


class TestCopyLedger:
    def test_record_and_prefix_totals(self):
        led = copytrack.CopyLedger()
        led.record("wire.frame_join", 100)
        led.record("wire.frame_join", 50)
        led.record("ckpt.blob_join", 7)
        assert led.bytes_copied() == 157
        assert led.bytes_copied(copytrack.WIRE_PREFIX) == 150
        assert led.events(copytrack.WIRE_PREFIX) == 2
        assert led.events() == 3

    def test_snapshot_shape(self):
        led = copytrack.CopyLedger()
        led.record("wire.encode_cast", 8)
        snap = led.snapshot()
        assert snap["sites"] == {
            "wire.encode_cast": {"bytes": 8, "events": 1}
        }
        assert snap["total_bytes"] == 8
        assert snap["wire_bytes"] == 8

    def test_reset_zeroes_everything(self):
        led = copytrack.CopyLedger()
        led.record("arena.deserialize_into", 64)
        led.reset()
        assert led.bytes_copied() == 0
        assert led.snapshot()["sites"] == {}

    def test_negative_size_rejected(self):
        led = copytrack.CopyLedger()
        with pytest.raises(ValueError, match="negative"):
            led.record("wire.frame_join", -1)

    def test_measured_join_counts_on_global_ledger(self):
        blob = copytrack.measured_join(
            [b"ab", memoryview(b"cd")], site="wire.frame_join"
        )
        assert blob == b"abcd"
        assert copytrack.ledger().bytes_copied("wire.frame_join") == 4

    def test_dist_reexport_is_the_same_ledger(self):
        assert dist_copytrack.ledger() is copytrack.ledger()
        assert dist_copytrack.SITE_FRAME_JOIN == copytrack.SITE_FRAME_JOIN
        assert dist_copytrack.CopyLedger is copytrack.CopyLedger


def _own_fields(config, field, spectrum, rank):
    """The compressed fields rank ``rank`` would ship (driver-side replay)."""
    pipeline = build_pipeline(config, spectrum)
    own = []
    for sub in pipeline.decomposition:
        if sub.index % config.num_ranks != rank:
            continue
        block = pipeline.decomposition.extract(field, sub)
        if not np.any(block):
            continue
        own.append(
            pipeline.local.convolve(
                block, sub.corner, pattern=pipeline._pattern(sub.corner)
            )
        )
    return own


def _measured_legacy_wire_copies(own, blob_len, peers):
    """Hot-path bytes the pre-refactor send path copied for one rank,
    measured by running the still-instrumented legacy entry points:
    one contiguous join per serialized field, then one header+payload
    concatenation per peer."""
    led = copytrack.ledger()
    before = led.bytes_copied(copytrack.WIRE_PREFIX)
    for compressed in own:
        serialize_compressed(compressed)  # wire.serialize_join
    payload = bytes(blob_len)
    for _ in range(peers):
        encode_frame(
            Frame(FrameKind.DATA, 0, TAG_EXCHANGE, payload)
        )  # wire.frame_join
    return led.bytes_copied(copytrack.WIRE_PREFIX) - before


class TestZeroCopyAcceptance:
    """The issue's acceptance bar at the reference shape, over TCP."""

    @pytest.fixture(scope="class")
    def reference_run(self):
        config = DistConfig(num_ranks=4, transport="tcp", **REFERENCE)
        field = composite_field(config.n, config.seed)
        spectrum = default_spectrum(config)
        serial = build_pipeline(config, spectrum).run_serial(field)
        report = dist_run(config, field=field, spectrum=spectrum)
        return config, field, spectrum, serial, report

    def test_bitwise_identical_to_run_serial(self, reference_run):
        _config, _field, _spectrum, serial, report = reference_run
        assert np.array_equal(report.approx, serial.approx)
        assert report.failed_ranks == []

    def test_wire_ledger_within_1pct_of_eq6(self, reference_run):
        _config, _field, _spectrum, _serial, report = reference_run
        assert report.predicted_value_bytes > 0
        assert 1.0 <= report.wire_over_model <= 1.01

    def test_zero_hot_path_copies_per_rank(self, reference_run):
        config, _field, _spectrum, _serial, report = reference_run
        assert len(report.rank_results) == config.num_ranks
        for rank, result in report.rank_results.items():
            assert result.copies["wire_bytes"] == 0, (
                f"rank {rank} copied hot-path bytes: {result.copies}"
            )
            # the only remaining copy is the fault-tolerance mailbox blob
            sites = set(result.copies["sites"])
            assert sites <= {copytrack.SITE_CHECKPOINT_JOIN}

    def test_at_least_90pct_reduction_vs_measured_legacy(self, reference_run):
        config, field, spectrum, _serial, report = reference_run
        peers = config.num_ranks - 1
        for rank, result in report.rank_results.items():
            own = _own_fields(config, field, spectrum, rank)
            baseline = _measured_legacy_wire_copies(
                own, result.exchange_payload_bytes, peers
            )
            assert baseline > 0  # the legacy path always copied something
            new = result.copies["wire_bytes"]
            reduction = 1.0 - new / baseline
            assert reduction >= 0.90, (
                f"rank {rank}: {new} of {baseline} baseline bytes "
                f"still copied ({reduction:.1%} reduction)"
            )

    def test_checkpoint_join_matches_payload_bytes(self, reference_run):
        _config, _field, _spectrum, _serial, report = reference_run
        for result in report.rank_results.values():
            site = result.copies["sites"][copytrack.SITE_CHECKPOINT_JOIN]
            assert site["bytes"] == result.exchange_payload_bytes
            assert site["events"] == 1  # barrier mode: one blob


class TestFloat32CopyAccounting:
    def test_float32_records_exactly_the_precision_casts(self):
        """float32 is allowed exactly one counted cast per direction —
        nothing else may appear under ``wire.``."""
        config = DistConfig(
            num_ranks=2,
            transport="local",
            precision="float32",
            n=16,
            k=4,
            sigma=2.0,
            policy="flat:2",
        )
        report = dist_run(config)
        assert report.failed_ranks == []
        copytrack_sites = set()
        for result in report.rank_results.values():
            copytrack_sites |= set(result.copies["sites"])
        # loopback transport joins frames (counted); no serialize joins
        # survive, and the only other wire sites are the two casts
        assert copytrack.SITE_SERIALIZE_JOIN not in copytrack_sites
        assert copytrack.SITE_ENCODE_CAST in copytrack_sites
        assert copytrack.SITE_DECODE_CAST in copytrack_sites


class TestLocalTransportAccounting:
    def test_local_threads_share_one_ledger(self):
        """Loopback ranks are threads: copies land on the shared process
        ledger (documented on RankResult.copies)."""
        config = DistConfig(
            num_ranks=2, transport="local", n=16, k=4, sigma=2.0,
            policy="flat:2",
        )
        report = dist_run(config)
        snapshots = [
            r.copies for r in report.rank_results.values()
        ]
        # every thread saw the same global ledger state (same totals
        # modulo snapshot timing); all report the checkpoint joins
        for snap in snapshots:
            assert snap["sites"][copytrack.SITE_CHECKPOINT_JOIN]["events"] >= 2
