"""Deterministic scheduler/queue/admission tests — injected clock, no sleeps.

Covers the acceptance list: batch formation by compatibility key, max_wait
flush, queue-full rejection, deadline expiry, and retry-after-worker-
failure.  Every test drives a ManualClock explicitly; wall time never
enters the scheduling decisions.
"""

import numpy as np
import pytest

from repro.core.policy import SamplingPolicy
from repro.errors import AdmissionError, RequestTimeoutError, ServiceError
from repro.kernels.gaussian import GaussianKernel
from repro.serve import (
    BoundedRequestQueue,
    ConvolutionServer,
    ManualClock,
    RequestState,
    ServerConfig,
)

N, K = 16, 4


@pytest.fixture
def spectrum():
    return GaussianKernel(n=N, sigma=1.5).spectrum()


def make_server(clock, fault_hook=None, **overrides):
    defaults = dict(
        n=N,
        k=K,
        max_queue=8,
        max_batch_size=4,
        max_wait_s=0.1,
        max_retries=1,
        retry_backoff_s=0.05,
        default_policy=SamplingPolicy.flat_rate(4),
    )
    defaults.update(overrides)
    return ConvolutionServer(
        ServerConfig(**defaults), clock=clock, fault_hook=fault_hook
    )


def submit_n(server, rng, count, **kwargs):
    return [
        server.submit(rng.standard_normal((N, N, N)), kernel="g", **kwargs)
        for _ in range(count)
    ]


class TestBatchFormation:
    def test_full_batch_flushes_immediately_by_size(self, rng, spectrum):
        clock = ManualClock()
        server = make_server(clock)
        server.register_kernel("g", spectrum)
        handles = submit_n(server, rng, 4)
        assert all(h.state is RequestState.QUEUED for h in handles)
        server.pump()  # no clock advance needed: size trigger
        assert all(h.state is RequestState.DONE for h in handles)
        snap = server.snapshot()
        assert snap["counters"]["batches_formed.size"] == 1
        assert snap["counters"].get("batches_formed.age", 0) == 0

    def test_partial_batch_waits_for_max_wait(self, rng, spectrum):
        clock = ManualClock()
        server = make_server(clock)
        server.register_kernel("g", spectrum)
        handles = submit_n(server, rng, 2)
        server.pump()
        assert all(h.state is RequestState.QUEUED for h in handles)
        clock.advance(0.099)
        server.pump()
        assert all(h.state is RequestState.QUEUED for h in handles)
        clock.advance(0.001)
        server.pump()  # age trigger fires exactly at max_wait
        assert all(h.state is RequestState.DONE for h in handles)
        assert server.snapshot()["counters"]["batches_formed.age"] == 1

    def test_incompatible_requests_form_separate_batches(self, rng, spectrum):
        clock = ManualClock()
        server = make_server(clock)
        server.register_kernel("g", spectrum)
        server.register_kernel("g2", spectrum * 0.5)
        a = submit_n(server, rng, 2, policy=SamplingPolicy.flat_rate(4))
        b = submit_n(server, rng, 2, policy=SamplingPolicy.flat_rate(2))
        c = [server.submit(rng.standard_normal((N, N, N)), kernel="g2")]
        clock.advance(0.1)
        server.pump()
        assert all(
            h.state is RequestState.DONE for h in a + b + c
        )
        # three compatibility groups -> three batches, never mixed
        assert server.snapshot()["counters"]["batches_executed"] == 3

    def test_batches_cap_at_max_batch_size(self, rng, spectrum):
        clock = ManualClock()
        server = make_server(clock)
        server.register_kernel("g", spectrum)
        handles = submit_n(server, rng, 7)
        clock.advance(0.1)
        server.pump()
        assert all(h.state is RequestState.DONE for h in handles)
        sizes = server.snapshot()["histograms"]["batch.size"]
        assert sizes["count"] == 2 and sizes["max"] == 4.0


class TestAdmissionControl:
    def test_queue_full_rejects_without_raising(self, rng, spectrum):
        clock = ManualClock()
        server = make_server(clock, max_queue=3)
        server.register_kernel("g", spectrum)
        accepted = submit_n(server, rng, 3)
        rejected = server.submit(rng.standard_normal((N, N, N)), kernel="g")
        assert all(h.state is RequestState.QUEUED for h in accepted)
        assert rejected.state is RequestState.REJECTED
        with pytest.raises(AdmissionError, match="queue full"):
            rejected.result()
        assert server.snapshot()["counters"]["requests_rejected"] == 1
        # accepted work still completes
        clock.advance(0.1)
        server.pump()
        assert all(h.state is RequestState.DONE for h in accepted)

    def test_unknown_kernel_rejected(self, rng, spectrum):
        server = make_server(ManualClock())
        handle = server.submit(rng.standard_normal((N, N, N)), kernel="nope")
        assert handle.state is RequestState.REJECTED
        with pytest.raises(AdmissionError, match="unknown kernel"):
            handle.result()

    def test_bad_shape_rejected(self, rng, spectrum):
        server = make_server(ManualClock())
        server.register_kernel("g", spectrum)
        handle = server.submit(np.zeros((N, N, N - 1)), kernel="g")
        assert handle.state is RequestState.REJECTED
        with pytest.raises(AdmissionError, match="shape"):
            handle.result()


class TestDeadlines:
    def test_deadline_expiry_in_queue(self, rng, spectrum):
        clock = ManualClock()
        server = make_server(clock, max_wait_s=1.0)
        server.register_kernel("g", spectrum)
        doomed = submit_n(server, rng, 1, timeout_s=0.2)[0]
        patient = submit_n(server, rng, 1)[0]
        clock.advance(0.3)
        server.pump()
        assert doomed.state is RequestState.TIMED_OUT
        with pytest.raises(RequestTimeoutError, match="deadline expired"):
            doomed.result()
        assert server.snapshot()["counters"]["requests_timed_out"] == 1
        # the survivor still flushes by age later
        clock.advance(0.7)
        server.pump()
        assert patient.state is RequestState.DONE

    def test_default_timeout_applies(self, rng, spectrum):
        clock = ManualClock()
        server = make_server(clock, max_wait_s=1.0, default_timeout_s=0.1)
        server.register_kernel("g", spectrum)
        handle = submit_n(server, rng, 1)[0]
        clock.advance(0.11)
        server.pump()
        assert handle.state is RequestState.TIMED_OUT


class TestRetry:
    def test_retry_after_worker_failure_succeeds(self, rng, spectrum):
        clock = ManualClock()
        failures = []

        def flaky(batch, attempt):
            if attempt == 1:
                failures.append(attempt)
                raise RuntimeError("injected worker crash")

        server = make_server(clock, fault_hook=flaky)
        server.register_kernel("g", spectrum)
        handles = submit_n(server, rng, 4)
        server.pump()  # first attempt fails, batch re-queued with backoff
        assert failures == [1]
        assert all(h.state is RequestState.QUEUED for h in handles)
        server.pump()  # backoff (0.05s) not yet elapsed: nothing runs
        assert all(h.state is RequestState.QUEUED for h in handles)
        clock.advance(0.05)
        server.pump()
        assert all(h.state is RequestState.DONE for h in handles)
        counters = server.snapshot()["counters"]
        assert counters["requests_retried"] == 4
        assert counters["requests_completed"] == 4

    def test_retries_exhausted_fails_request(self, rng, spectrum):
        clock = ManualClock()

        def always_fail(batch, attempt):
            raise RuntimeError("injected permanent failure")

        server = make_server(clock, fault_hook=always_fail, max_retries=2)
        server.register_kernel("g", spectrum)
        handle = submit_n(server, rng, 1)[0]
        clock.advance(0.1)
        server.pump()  # attempt 1 fails -> backoff 0.05
        clock.advance(0.05)
        server.pump()  # attempt 2 fails -> backoff 0.1
        clock.advance(0.1)
        server.pump()  # attempt 3 fails -> retries exhausted
        assert handle.state is RequestState.FAILED
        with pytest.raises(ServiceError, match="after 3 attempts"):
            handle.result()
        assert server.snapshot()["counters"]["requests_failed"] == 1

    def test_drain_simulates_backoff_on_manual_clock(self, rng, spectrum):
        clock = ManualClock()

        def flaky(batch, attempt):
            if attempt == 1:
                raise RuntimeError("injected worker crash")

        server = make_server(clock, fault_hook=flaky)
        server.register_kernel("g", spectrum)
        handles = submit_n(server, rng, 2)
        server.drain()  # advances through max_wait and the retry backoff
        assert all(h.state is RequestState.DONE for h in handles)


class TestBoundedRequestQueueUnit:
    def _request(self, clock, rid=1, not_before=0.0):
        from repro.serve.request import ConvolutionRequest, RequestHandle

        return ConvolutionRequest(
            request_id=rid,
            field=np.zeros((N, N, N)),
            n=N,
            k=K,
            kernel="g",
            policy=SamplingPolicy.flat_rate(4),
            real_kernel=None,
            backend="numpy",
            batch=None,
            submitted_at=clock.now(),
            deadline=None,
            handle=RequestHandle(rid),
            queued_at=clock.now(),
            not_before=not_before,
        )

    def test_capacity_enforced(self):
        clock = ManualClock()
        queue = BoundedRequestQueue(2)
        queue.push(self._request(clock, 1))
        queue.push(self._request(clock, 2))
        with pytest.raises(AdmissionError):
            queue.push(self._request(clock, 3))
        # retries bypass the capacity check (they already held a slot)
        queue.push(self._request(clock, 4), front=True)
        assert len(queue) == 3

    def test_pop_batch_stops_at_backing_off_front(self):
        clock = ManualClock()
        queue = BoundedRequestQueue(8)
        r1 = self._request(clock, 1, not_before=1.0)
        r2 = self._request(clock, 2)
        queue.push(r1)
        queue.push(r2)
        key = r1.compat_key
        assert queue.pop_batch(key, 4, now=0.0) == []  # front parks the group
        assert [r.request_id for r in queue.pop_batch(key, 4, now=1.0)] == [1, 2]
        assert len(queue) == 0
