"""Tests for the compute/communication trace analysis and the CLI."""

import numpy as np
import pytest

from repro.cli import COMMANDS, main
from repro.cluster.device import V100_32GB, XEON_GOLD_6148
from repro.cluster.network import Link
from repro.cluster.trace import (
    accelerate_compute_fraction,
    clock_breakdown_fractions,
    distributed_fft_breakdown,
    gpu_acceleration_story,
)
from repro.errors import ConfigurationError
from repro.util.timing import SimClock


class TestAccelerationProjection:
    def test_paper_numbers(self):
        """49.45% comm + 43x compute acceleration -> ~97% comm (§2.1)."""
        got = accelerate_compute_fraction(0.4945, 43.0)
        assert got == pytest.approx(0.977, abs=0.005)

    def test_identity_at_accel_one(self):
        assert accelerate_compute_fraction(0.3, 1.0) == pytest.approx(0.3)

    def test_limits(self):
        assert accelerate_compute_fraction(0.0, 10.0) == 0.0
        assert accelerate_compute_fraction(1.0, 10.0) == 1.0

    def test_monotone_in_accel(self):
        fracs = [accelerate_compute_fraction(0.5, a) for a in (1, 4, 16, 64)]
        assert fracs == sorted(fracs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            accelerate_compute_fraction(1.5, 2.0)
        with pytest.raises(ConfigurationError):
            accelerate_compute_fraction(0.5, 0.0)

    def test_story_rows(self):
        rows = gpu_acceleration_story()
        assert len(rows) == 2
        assert rows[0][1] == pytest.approx(0.4945)
        assert rows[1][1] > 0.95


class TestBreakdown:
    def test_cpu_vs_gpu_fraction_shift(self):
        """GPU compute shrinks -> communication fraction grows (the §2.1
        motivation, reproduced from the models)."""
        link = Link()
        cpu = distributed_fft_breakdown(1024, 4, XEON_GOLD_6148, link)
        gpu = distributed_fft_breakdown(1024, 4, V100_32GB, link)
        assert gpu.comm_fraction > cpu.comm_fraction

    def test_fractions_sum_to_one(self):
        b = distributed_fft_breakdown(256, 8, XEON_GOLD_6148, Link())
        other_fraction = b.other_s / b.total_s
        assert b.comm_fraction + b.compute_fraction + other_fraction == (
            pytest.approx(1.0)
        )

    def test_clock_fractions(self):
        clock = SimClock()
        clock.advance(3.0, "comm")
        clock.advance(1.0, "compute")
        fracs = clock_breakdown_fractions(clock)
        assert fracs["comm"] == pytest.approx(0.75)
        assert fracs["compute"] == pytest.approx(0.25)

    def test_empty_clock(self):
        assert clock_breakdown_fractions(SimClock()) == {}


class TestCLI:
    @pytest.mark.parametrize("cmd", ["table1", "table4", "eq6", "batch", "commshift"])
    def test_fast_commands_run(self, cmd, capsys):
        assert main([cmd]) == 0
        out = capsys.readouterr().out
        assert len(out) > 50

    def test_table1_output_has_rows(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "N=8192" in out

    def test_commshift_prints_97(self, capsys):
        main(["commshift"])
        out = capsys.readouterr().out
        assert "0.977" in out or "0.98" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "table1", "table2", "table3", "table4", "fig1", "fig3",
            "eq6", "batch", "massif", "commshift", "report",
        }
