"""TcpTransport bootstrap dialing: capped exponential backoff + jitter.

A standing pool forms its mesh from agents that start minutes apart, so
the dialer must tolerate peers whose listeners do not exist yet.  These
tests pin the backoff schedule itself (:func:`dial_backoff_s`) and the
retry loop (:func:`dial_with_backoff`) on a manual clock with a fake
``connect`` — no sockets, no sleeps.
"""

import random

import pytest

from repro.dist.tcp import (
    DIAL_BASE_S,
    DIAL_CAP_S,
    dial_backoff_s,
    dial_with_backoff,
    normalize_endpoints,
)
from repro.errors import ConfigurationError, TransportError
from repro.serve.clock import ManualClock


class TestDialBackoffSchedule:
    def test_doubles_per_attempt_without_jitter(self):
        rng = random.Random(0)
        delays = [
            dial_backoff_s(a, rng, base=0.01, cap=10.0, jitter=0.0)
            for a in range(5)
        ]
        assert delays == [0.01, 0.02, 0.04, 0.08, 0.16]

    def test_cap_clamps_late_attempts(self):
        rng = random.Random(0)
        assert dial_backoff_s(50, rng, base=0.02, cap=1.0, jitter=0.0) == 1.0

    def test_defaults_start_at_base_and_never_exceed_cap(self):
        rng = random.Random(7)
        for attempt in range(20):
            delay = dial_backoff_s(attempt, rng)
            assert 0.0 < delay <= DIAL_CAP_S
        assert dial_backoff_s(0, random.Random(7)) <= DIAL_BASE_S

    def test_jitter_stays_in_band(self):
        # jitter=0.5 scales each raw delay into [raw/2, raw]
        rng = random.Random(123)
        for attempt in range(10):
            raw = min(1.0, 0.02 * 2**attempt)
            delay = dial_backoff_s(attempt, rng, jitter=0.5)
            assert raw * 0.5 <= delay <= raw

    def test_deterministic_per_seed(self):
        a = [dial_backoff_s(i, random.Random(42)) for i in range(5)]
        b = [dial_backoff_s(i, random.Random(42)) for i in range(5)]
        assert a == b


class TestDialWithBackoff:
    def test_returns_socket_once_listener_appears(self):
        clock = ManualClock()
        attempts = []

        def connect(endpoint, timeout):
            attempts.append(clock.now())
            if len(attempts) < 4:
                raise ConnectionRefusedError("not listening yet")
            return "fake-socket"

        sock = dial_with_backoff(
            ("127.0.0.1", 9999),
            rank=0,
            dst=1,
            deadline=clock.now() + 30.0,
            clock=clock,
            connect=connect,
        )
        assert sock == "fake-socket"
        assert len(attempts) == 4
        # each retry waited on the clock: attempt times strictly increase
        assert attempts == sorted(attempts)
        assert attempts[0] == 0.0 and attempts[-1] > 0.0

    def test_delays_grow_exponentially_between_retries(self):
        clock = ManualClock()
        times = []

        def connect(endpoint, timeout):
            times.append(clock.now())
            raise ConnectionRefusedError("never")

        with pytest.raises(TransportError):
            dial_with_backoff(
                ("127.0.0.1", 9999),
                rank=1,
                dst=2,
                deadline=clock.now() + 0.5,
                clock=clock,
                connect=connect,
            )
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(gaps) >= 3
        # jitter keeps any gap within its attempt's band, and the band
        # doubles: gap k is always below the *undithered* next delay
        for k, gap in enumerate(gaps):
            raw = min(DIAL_CAP_S, DIAL_BASE_S * 2**k)
            assert raw * 0.5 <= gap <= raw

    def test_timeout_raises_transport_error_naming_the_pair(self):
        clock = ManualClock()

        def connect(endpoint, timeout):
            raise ConnectionRefusedError("nope")

        with pytest.raises(TransportError, match=r"rank 3.*rank 7.*10\.0\.0\.1:4242"):
            dial_with_backoff(
                ("10.0.0.1", 4242),
                rank=3,
                dst=7,
                deadline=clock.now() + 1.0,
                clock=clock,
                connect=connect,
            )

    def test_deterministic_schedule_per_rank_pair(self):
        def run(rank, dst):
            clock = ManualClock()
            times = []

            def connect(endpoint, timeout):
                times.append(clock.now())
                raise ConnectionRefusedError("never")

            with pytest.raises(TransportError):
                dial_with_backoff(
                    ("127.0.0.1", 1),
                    rank=rank,
                    dst=dst,
                    deadline=1.0,
                    clock=clock,
                    connect=connect,
                )
            return times

        assert run(0, 1) == run(0, 1)  # reproducible per pair
        assert run(0, 1) != run(1, 0)  # decorrelated across pairs


class TestNormalizeEndpoints:
    def test_bare_ports_mean_localhost(self):
        assert normalize_endpoints([5000, 5001]) == [
            ("127.0.0.1", 5000),
            ("127.0.0.1", 5001),
        ]

    def test_pairs_pass_through_and_mix_with_ports(self):
        assert normalize_endpoints([("10.0.0.2", 5000), 5001]) == [
            ("10.0.0.2", 5000),
            ("127.0.0.1", 5001),
        ]

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="endpoint"):
            normalize_endpoints([object()])
