"""Streamed (overlap) exchange: equivalence, accounting, and windows.

The streaming exchange reorders almost everything about how bytes move —
per-chunk frames instead of one blob, sends racing compute on a pump
thread, an end-of-stream marker per peer — so the test obligations are:

- **Equivalence**: for seeded sweeps over rank counts, chunk counts
  (grid sizes) and payload sizes (sampling policies), the streamed
  result is bitwise equal to barrier mode and to ``run_serial``.
- **Eq 6 accounting still holds**: the measured exchange wire bytes obey
  the *exact* frame-level invariant in both modes (payload bytes plus a
  header per frame, ``P-1`` copies of each), the streamed mode's extra
  framing stays within 1% of the Eq 6 value-byte prediction at the
  calibrated reference shape, and the per-overlap-window ledger counters
  sum exactly to the category totals (no byte unattributed, none counted
  twice).
- **Streaming actually streams**: chunk frames per peer equal the chunk
  count plus the end marker, and the barrier mode still sends exactly
  one frame per peer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.launcher import default_spectrum, dist_run
from repro.dist.wire import HEADER_BYTES
from repro.dist.worker import DistConfig, build_pipeline, composite_field

#: calibrated reference shape for ratio bounds (see test_dist_runtime)
REFERENCE = dict(n=32, k=8, sigma=2.0, policy="flat:2")

_serial_memo: dict = {}


def _serial(config: DistConfig):
    key = (config.n, config.k, config.sigma, config.policy, config.seed)
    if key not in _serial_memo:
        field = composite_field(config.n, config.seed)
        spectrum = default_spectrum(config)
        serial = build_pipeline(config, spectrum).run_serial(field)
        _serial_memo[key] = (field, spectrum, serial)
    return _serial_memo[key]


def _exact_wire_bytes(report) -> int:
    """The frame-level invariant: every payload byte plus a header per
    frame, shipped to each of the P-1 peers."""
    p = report.config.num_ranks
    return sum(
        (p - 1)
        * (r.exchange_payload_bytes + r.exchange_frames_per_peer * HEADER_BYTES)
        for r in report.rank_results.values()
    )


def _check_equivalence_and_accounting(config_kwargs: dict) -> None:
    barrier = DistConfig(overlap=False, **config_kwargs)
    streamed = DistConfig(overlap=True, **config_kwargs)
    field, spectrum, serial = _serial(barrier)

    rep_b = dist_run(barrier, field=field, spectrum=spectrum)
    rep_s = dist_run(streamed, field=field, spectrum=spectrum)
    assert rep_b.failed_ranks == [] and rep_s.failed_ranks == []

    # bitwise: streamed == barrier == run_serial
    assert np.array_equal(rep_s.approx, serial.approx)
    assert np.array_equal(rep_b.approx, serial.approx)

    # both modes ship identical value payloads (framing differs)
    assert rep_s.predicted_value_bytes == rep_b.predicted_value_bytes
    for rank, rs in rep_s.rank_results.items():
        rb = rep_b.rank_results[rank]
        assert rs.num_chunks == rb.num_chunks
        assert rs.total_samples == rb.total_samples
        assert rs.overlap and not rb.overlap
        # streamed: one frame per chunk plus the end marker; barrier: one
        assert rs.exchange_frames_per_peer == rs.num_chunks + 1
        assert rb.exchange_frames_per_peer == 1

    # exact Eq 6 frame accounting in BOTH modes
    assert rep_b.exchange_wire_bytes == _exact_wire_bytes(rep_b)
    assert rep_s.exchange_wire_bytes == _exact_wire_bytes(rep_s)
    assert (
        rep_s.wire_totals.get("recv.exchange.bytes", 0)
        == rep_s.exchange_wire_bytes
    )

    # every streamed exchange byte is attributed to exactly one overlap
    # window: the per-window counters sum to the category totals
    for rank, rs in rep_s.rank_results.items():
        counters = rs.wire["counters"]
        window_sent = sum(
            v
            for name, v in counters.items()
            if name.startswith("window.") and ".sent.exchange." in name
        )
        assert window_sent == counters.get("sent.exchange.bytes", 0)


# Seeded hypothesis-style sweep: rank counts x grid sizes (chunk counts:
# 8 vs 64 sub-domains) x sampling policies (payload sizes) x input seeds.
@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    ranks=st.sampled_from([1, 2, 4]),
    n=st.sampled_from([8, 16]),
    policy=st.sampled_from(["flat:1", "flat:2", "banded"]),
    seed=st.integers(min_value=0, max_value=3),
    window=st.sampled_from([1, 2, 4]),
)
def test_streamed_equals_barrier_equals_serial_local(
    ranks, n, policy, seed, window
):
    _check_equivalence_and_accounting(
        dict(
            n=n,
            k=4,
            sigma=2.0,
            policy=policy,
            seed=seed,
            num_ranks=ranks,
            transport="local",
            window=window,
        )
    )


@pytest.mark.parametrize("ranks", [2, 4])
def test_streamed_equals_serial_tcp(ranks):
    _check_equivalence_and_accounting(
        dict(
            n=16,
            k=4,
            sigma=2.0,
            policy="flat:2",
            num_ranks=ranks,
            transport="tcp",
        )
    )


def test_reference_shape_ratio_within_1pct_of_barrier():
    """At the calibrated reference shape the streamed mode's extra
    framing (per-chunk headers + checkpoint preambles + end markers)
    costs < 1% of the Eq 6 value-byte prediction, and both modes stay
    within the repo's 5%-of-Eq-6 acceptance band."""
    base = dict(num_ranks=4, transport="local", **REFERENCE)
    field, spectrum, _serial_res = _serial(DistConfig(**base))
    rep_b = dist_run(DistConfig(overlap=False, **base), field=field, spectrum=spectrum)
    rep_s = dist_run(DistConfig(overlap=True, **base), field=field, spectrum=spectrum)
    assert 1.0 <= rep_b.wire_over_model <= 1.05
    assert 1.0 <= rep_s.wire_over_model <= 1.05
    assert rep_s.wire_over_model - rep_b.wire_over_model < 0.01


def test_zero_field_streams_nothing_but_end_markers():
    config = DistConfig(
        n=16, k=4, num_ranks=2, transport="local", overlap=True
    )
    field = np.zeros((16, 16, 16))
    spectrum = default_spectrum(config)
    report = dist_run(config, field=field, spectrum=spectrum)
    assert np.array_equal(report.approx, np.zeros((16, 16, 16)))
    for r in report.rank_results.values():
        assert r.num_chunks == 0
        assert r.exchange_payload_bytes == 0
        assert r.exchange_frames_per_peer == 1  # just the end marker
    assert report.exchange_wire_bytes == 2 * HEADER_BYTES  # 2 ranks x 1 peer


def test_window_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="window"):
        DistConfig(n=16, k=4, window=0)


def test_streamed_hidden_time_reported():
    """Overlap mode reports send time hidden behind compute; barrier
    mode reports exactly zero."""
    base = dict(n=16, k=4, num_ranks=2, transport="local")
    field, spectrum, _ = _serial(DistConfig(**base))
    rep_b = dist_run(DistConfig(overlap=False, **base), field=field, spectrum=spectrum)
    rep_s = dist_run(DistConfig(overlap=True, **base), field=field, spectrum=spectrum)
    assert rep_b.max_exchange_hidden_s == 0.0
    assert rep_s.max_exchange_hidden_s >= 0.0
    for r in rep_s.rank_results.values():
        assert r.exchange_hidden_s <= r.compute_s + 1e-6
