"""Report rendering: byte-identical output, trend math, lazy store reads."""

from repro.xpr.report import TrajectoryReport
from repro.xpr.store import TrajectoryStore, TrialRecord


def record(metrics, *, trial_id="abc123def456", status="ok", error=None,
           experiment="exp"):
    return TrialRecord(
        experiment=experiment,
        trial_id=trial_id,
        git_rev="abc123",
        ts="2026-01-01T00:00:00+00:00",
        status=status,
        params={"bench": "demo", "config": "cfg", "n": 32, "k": 8},
        metrics=metrics,
        error=error,
    )


def make_store(tmp_path):
    store = TrajectoryStore(tmp_path / "T.jsonl")
    store.extend([record({"m_s": 1.5}), record({"m_s": 3.0})])
    return store


class TestByteIdentical:
    EXPECTED_MD = (
        "# xpr trajectory report\n"
        "\n"
        "2 record(s) across 1 experiment(s) in `T.jsonl`.\n"
        "\n"
        "## exp\n"
        "\n"
        "| trial | config | metric | runs | first | median | latest "
        "| delta |\n"
        "|---|---|---|---|---|---|---|---|\n"
        "| abc123def456 | bench=demo config=cfg | m_s | 2 | 1.5 | 2.25 "
        "| 3 | +100.0% |\n"
    )

    def test_markdown_bytes_are_pinned(self, tmp_path):
        # The exact bytes, not just the shape: CI diffs uploaded reports
        # line by line, so rendering must never drift.
        assert (
            TrajectoryReport(make_store(tmp_path)).to_markdown()
            == self.EXPECTED_MD
        )

    def test_identical_stores_render_identical_bytes(self, tmp_path):
        a = make_store(tmp_path / "a")
        b = make_store(tmp_path / "b")
        assert (
            TrajectoryReport(a).to_markdown()
            == TrajectoryReport(b).to_markdown()
        )
        assert TrajectoryReport(a).to_html() == TrajectoryReport(b).to_html()


class TestTrendRows:
    def test_delta_is_latest_vs_median_of_previous(self, tmp_path):
        store = TrajectoryStore(tmp_path / "T.jsonl")
        store.extend(
            [record({"m_s": v}) for v in (1.0, 2.0, 3.0)]
        )
        (row,) = TrajectoryReport(store).trend_rows("exp")
        # runs=3, first=1, median=2, latest=3, delta vs median([1,2])=1.5
        assert row[3:] == ["3", "1", "2", "3", "+100.0%"]

    def test_single_run_is_marked_new(self, tmp_path):
        store = TrajectoryStore(tmp_path / "T.jsonl")
        store.append(record({"m_s": 1.0}))
        (row,) = TrajectoryReport(store).trend_rows("exp")
        assert row[-1] == "new"

    def test_failed_runs_render_in_their_own_section(self, tmp_path):
        store = TrajectoryStore(tmp_path / "T.jsonl")
        store.extend(
            [
                record({"m_s": 1.0}),
                record({}, status="error", error="ValueError: boom"),
            ]
        )
        md = TrajectoryReport(store).to_markdown()
        assert "## failed runs" in md
        assert "ValueError: boom" in md

    def test_experiment_filter(self, tmp_path):
        store = TrajectoryStore(tmp_path / "T.jsonl")
        store.extend(
            [record({"m_s": 1.0}), record({"m_s": 1.0}, experiment="other")]
        )
        report = TrajectoryReport(store, experiment="other")
        assert report.experiments == ["other"]
        assert len(report.records) == 1


class TestLazyView:
    def test_store_is_read_exactly_once(self, tmp_path):
        store = make_store(tmp_path)
        report = TrajectoryReport(store)
        first = report.to_markdown()
        store.append(record({"m_s": 99.0}))  # mutates the file, not the view
        assert report.to_markdown() == first
        assert len(TrajectoryReport(store).records) == 3  # fresh view sees it


class TestHtml:
    def test_html_escapes_error_text(self, tmp_path):
        store = TrajectoryStore(tmp_path / "T.jsonl")
        store.append(
            record({}, status="error", error="bad <tag> & ampersand")
        )
        html_out = TrajectoryReport(store).to_html()
        assert "bad &lt;tag&gt; &amp; ampersand" in html_out
        assert "<tag>" not in html_out

    def test_html_has_the_same_cells_as_markdown(self, tmp_path):
        store = make_store(tmp_path)
        html_out = TrajectoryReport(store).to_html()
        for cell in ("abc123def456", "m_s", "2.25", "+100.0%"):
            assert f"<td>{cell}</td>" in html_out
