"""Tests for the pruned staged transforms — the paper's Step 2 machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.fft.pruned import (
    partial_idft,
    pencil_batches,
    pruned_fft3,
    pruned_input_fft,
    slab_from_subcube,
    zstage_batch,
)
from repro.util.arrays import embed_subcube


class TestPrunedInputFFT:
    def test_matches_explicit_padding(self, rng):
        x = rng.standard_normal((3, 4))
        got = pruned_input_fft(x, offset=2, n=8, axis=1)
        padded = np.zeros((3, 8))
        padded[:, 2:6] = x
        np.testing.assert_allclose(got, np.fft.fft(padded, axis=1), atol=1e-9)

    def test_offset_zero(self, rng):
        x = rng.standard_normal((5,))
        got = pruned_input_fft(x, 0, 16, axis=0)
        np.testing.assert_allclose(got, np.fft.fft(x, n=16), atol=1e-9)

    def test_rejects_overflow(self):
        with pytest.raises(ShapeError):
            pruned_input_fft(np.ones(5), offset=4, n=8, axis=0)


class TestSlab:
    def test_slab_equals_padded_2d_transform(self, rng):
        sub = rng.standard_normal((3, 3, 3))
        corner = (1, 2, 0)
        slab = slab_from_subcube(sub, corner, 8)
        dense = embed_subcube(sub, (8, 8, 3), (1, 2, 0))
        expected = np.fft.fft(np.fft.fft(dense, axis=0), axis=1)
        np.testing.assert_allclose(slab, expected, atol=1e-9)

    def test_slab_shape(self, rng):
        slab = slab_from_subcube(rng.standard_normal((4, 4, 4)), (0, 0, 0), 16)
        assert slab.shape == (16, 16, 4)

    def test_rejects_rank2(self):
        with pytest.raises(ShapeError):
            slab_from_subcube(np.ones((4, 4)), (0, 0, 0), 8)


class TestPencilBatches:
    def test_covers_range(self):
        slices = list(pencil_batches(10, 3))
        covered = [i for s in slices for i in range(s.start, s.stop)]
        assert covered == list(range(10))

    def test_exact_division(self):
        assert len(list(pencil_batches(8, 4))) == 2

    def test_single_batch(self):
        assert list(pencil_batches(5, 100)) == [slice(0, 5)]


class TestPrunedFFT3:
    @pytest.mark.parametrize("corner", [(0, 0, 0), (3, 5, 2), (12, 12, 12)])
    def test_matches_dense(self, corner, rng):
        sub = rng.standard_normal((4, 4, 4))
        ref = np.fft.fftn(embed_subcube(sub, (16, 16, 16), corner))
        got = pruned_fft3(sub, corner, 16)
        np.testing.assert_allclose(got, ref, atol=1e-8)

    @pytest.mark.parametrize("batch", [1, 7, 64, 1000])
    def test_batch_invariance(self, batch, rng):
        """The B parameter changes scheduling, never the result."""
        sub = rng.standard_normal((4, 4, 4))
        ref = pruned_fft3(sub, (2, 2, 2), 8, batch=None)
        got = pruned_fft3(sub, (2, 2, 2), 8, batch=batch)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_native_backend(self, rng):
        sub = rng.standard_normal((2, 2, 2))
        ref = np.fft.fftn(embed_subcube(sub, (8, 8, 8), (1, 1, 1)))
        got = pruned_fft3(sub, (1, 1, 1), 8, backend="native")
        np.testing.assert_allclose(got, ref, atol=1e-8)


class TestZStage:
    def test_zstage_pads_and_transforms(self, rng):
        rows = rng.standard_normal((5, 3)) + 0j
        got = zstage_batch(rows, corner_z=2, n=8)
        padded = np.zeros((5, 8), dtype=complex)
        padded[:, 2:5] = rows
        np.testing.assert_allclose(got, np.fft.fft(padded, axis=1), atol=1e-9)

    def test_rejects_rank3(self):
        with pytest.raises(ShapeError):
            zstage_batch(np.zeros((2, 2, 2)), 0, 8)


class TestPartialIDFT:
    def test_matches_full_inverse_subset(self, rng):
        spec = np.fft.fft(rng.standard_normal((4, 16)), axis=-1)
        full = np.fft.ifft(spec, axis=-1)
        coords = [0, 5, 11, 15]
        got = partial_idft(spec, coords, axis=-1)
        np.testing.assert_allclose(got, full[:, coords], atol=1e-10)

    def test_all_coords_equals_ifft(self, rng):
        spec = np.fft.fft(rng.standard_normal(8))
        got = partial_idft(spec, list(range(8)))
        np.testing.assert_allclose(got, np.fft.ifft(spec), atol=1e-10)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_any_axis(self, axis, rng):
        spec = np.fft.fftn(rng.standard_normal((4, 5, 6)))
        full = np.fft.ifft(spec, axis=axis)
        coords = [0, spec.shape[axis] - 1]
        got = partial_idft(spec, coords, axis=axis)
        np.testing.assert_allclose(got, np.take(full, coords, axis=axis), atol=1e-10)

    def test_rejects_out_of_range_coords(self):
        with pytest.raises(ShapeError):
            partial_idft(np.zeros(8, dtype=complex), [9])

    @given(
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_any_subset(self, n, seed):
        r = np.random.default_rng(seed)
        spec = np.fft.fft(r.standard_normal(n))
        m = int(r.integers(1, n + 1))
        coords = sorted(r.choice(n, size=m, replace=False).tolist())
        full = np.fft.ifft(spec)
        got = partial_idft(spec, coords)
        np.testing.assert_allclose(got, full[coords], atol=1e-8)
