"""Integration tests: cross-module behaviour of the full system.

These exercise the paths a downstream user actually runs: end-to-end
convolution across kernels, backends and policies; distributed equivalence;
the FFTX plan against the pipeline; Poisson solves through the
low-communication machinery; and MASSIF Algorithm 1 vs 2 agreement.
"""

import numpy as np
import pytest

from repro.cluster.comm import SimulatedComm
from repro.cluster.memory import MemoryTracker
from repro.core.pipeline import LowCommConvolution3D
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_convolve
from repro.fftx import fftx_execute, massif_convolution_plan
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.poisson import PoissonKernel
from repro.octree.interpolate import reconstruct_dense
from repro.util.arrays import l2_relative_error


class TestEndToEndConvolution:
    @pytest.mark.parametrize("backend", ["numpy", "native"])
    def test_full_grid_lossless_any_backend(self, backend, rng):
        n, k = 16, 4
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        field = rng.standard_normal((n, n, n))
        pipe = LowCommConvolution3D(
            n, k, spec, SamplingPolicy.flat_rate(1), backend=backend, batch=64
        )
        res = pipe.run_serial(field)
        np.testing.assert_allclose(
            res.approx, reference_convolve(field, spec), atol=1e-8
        )

    def test_poisson_solve_through_pipeline(self):
        """Solve -lap u = f via the low-communication pipeline: the second
        Green's-function use case (paper Eq 5)."""
        n, k = 32, 8
        pk = PoissonKernel(n=n, length=1.0)
        x = np.arange(n) / n
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        f = np.sin(2 * np.pi * X) * np.sin(2 * np.pi * Y)
        pipe = LowCommConvolution3D(
            n, k, pk.spectrum(), SamplingPolicy.flat_rate(2), batch=256
        )
        res = pipe.run_serial(f)
        exact = pk.solve(f)
        assert l2_relative_error(res.approx, exact) < 0.05

    def test_error_monotone_in_rate(self):
        """Pipeline error grows with the exterior downsampling rate."""
        n, k = 32, 8
        spec = GaussianKernel(n=n, sigma=2.0).spectrum()
        field = np.zeros((n, n, n))
        field[8:24, 8:24, 8:24] = 1.0
        exact = reference_convolve(field, spec)
        errs = []
        for r in (1, 2, 4):
            pipe = LowCommConvolution3D(
                n, k, spec, SamplingPolicy.flat_rate(r), batch=256
            )
            errs.append(l2_relative_error(pipe.run_serial(field).approx, exact))
        assert errs[0] <= errs[1] <= errs[2]
        assert errs[0] < 1e-9

    def test_compression_reduces_bytes_monotonically(self):
        n, k = 32, 8
        spec = GaussianKernel(n=n, sigma=2.0).spectrum()
        field = np.zeros((n, n, n))
        field[8:16, 8:16, 8:16] = 1.0
        sizes = []
        for r in (1, 2, 4):
            pipe = LowCommConvolution3D(
                n, k, spec, SamplingPolicy.flat_rate(r), batch=256
            )
            sizes.append(pipe.run_serial(field).compressed_bytes)
        assert sizes[0] > sizes[1] > sizes[2]


class TestDistributedEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_rank_count_invariance(self, p, rng):
        """The distributed result is independent of worker count."""
        n, k = 16, 4
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        field = rng.standard_normal((n, n, n))
        pipe = LowCommConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=64)
        serial = pipe.run_serial(field).approx
        dist = pipe.run_distributed(field, SimulatedComm(p)).approx
        np.testing.assert_allclose(dist, serial, atol=1e-12)


class TestFFTXAgainstPipeline:
    def test_plan_per_subdomain_equals_pipeline(self, rng):
        """Running the Fig 5 plan per sub-domain + accumulation equals the
        pipeline's serial result."""
        from repro.core.accumulate import accumulate_global
        from repro.core.decomposition import DomainDecomposition

        n, k = 16, 8
        spec = GaussianKernel(n=n, sigma=1.5).spectrum()
        field = rng.standard_normal((n, n, n))
        pol = SamplingPolicy.flat_rate(2)

        pipe = LowCommConvolution3D(n, k, spec, pol, batch=64)
        expected = pipe.run_serial(field).approx

        d = DomainDecomposition(n, k)
        outs = []
        for sub in d:
            block = d.extract(field, sub)
            if not np.any(block):
                continue
            plan, _ = massif_convolution_plan(n, k, sub.corner, spec, policy=pol)
            outs.append(fftx_execute(plan, block))
        got = accumulate_global(outs)
        np.testing.assert_allclose(got, expected, atol=1e-10)


class TestMemoryRealism:
    def test_peak_scales_with_k(self, rng):
        """Bigger sub-domains cost more peak memory — the Table 1/2 story
        reproduced with real allocations."""
        n = 16
        spec = GaussianKernel(n=n, sigma=1.2).spectrum()
        peaks = []
        for k in (4, 8):
            mt = MemoryTracker()
            pipe = LowCommConvolution3D(
                n, k, spec, SamplingPolicy.flat_rate(2), batch=64, memory=mt
            )
            field = np.zeros((n, n, n))
            field[:k, :k, :k] = 1.0
            pipe.run_serial(field)
            peaks.append(mt.peak_bytes)
        assert peaks[1] > peaks[0]

    def test_compressed_pipeline_peak_below_dense(self, rng):
        """Our working set stays under the dense 16 B * N^3 spectrum cost the
        traditional method needs just for its in-flight transform."""
        n, k = 32, 4
        spec = GaussianKernel(n=n, sigma=1.5).spectrum()
        mt = MemoryTracker()
        pipe = LowCommConvolution3D(
            n, k, spec, SamplingPolicy.flat_rate(4), batch=64, memory=mt
        )
        field = np.zeros((n, n, n))
        field[:k, :k, :k] = 1.0
        pipe.run_serial(field)
        assert mt.peak_bytes < 16 * n**3
