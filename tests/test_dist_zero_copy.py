"""Unit tests for the zero-copy wire path: Segments, encode_into,
scatter-gather sends, and the receive arena.

These cover the transport-level mechanics the end-to-end dist tests
exercise only implicitly: segment normalization, header scratch reuse,
partial ``sendmsg`` handling (including the IOV cap), and the arena's
slab size classes and recycling.
"""

import numpy as np
import pytest

from repro.dist.tcp import _IOV_CAP, _sendmsg_all
from repro.dist.transport import RecvArena
from repro.dist.wire import (
    HEADER_BYTES,
    Frame,
    FrameKind,
    Segments,
    decode_frame,
    encode_frame,
)
from repro.errors import CommunicationError, TransportError
from repro.util import copytrack


class TestSegments:
    def test_normalizes_and_drops_empty_parts(self):
        seg = Segments([b"ab", b"", bytearray(b"cd"), memoryview(b"e")])
        assert len(seg) == 5
        assert len(seg.parts) == 3
        assert all(isinstance(p, memoryview) for p in seg.parts)

    def test_accepts_numpy_arrays_as_flat_byte_views(self):
        arr = np.arange(4, dtype=np.int64)
        seg = Segments([arr])
        assert len(seg) == arr.nbytes
        assert seg.parts[0].itemsize == 1

    def test_tobytes_joins_and_counts(self):
        copytrack.reset()
        seg = Segments([b"ab", b"cd"])
        assert seg.tobytes() == b"abcd"
        led = copytrack.ledger()
        assert led.bytes_copied(copytrack.SITE_FRAME_JOIN) == 4
        copytrack.reset()

    def test_empty_segments(self):
        seg = Segments([])
        assert len(seg) == 0
        assert seg.parts == ()


class TestEncodeInto:
    def test_matches_contiguous_encoder(self):
        frame = Frame(FrameKind.DATA, 3, 7, b"payload")
        scratch = bytearray(HEADER_BYTES)
        segments = frame.encode_into(scratch)
        assert b"".join(segments) == encode_frame(frame)

    def test_header_lands_in_scratch(self):
        frame = Frame(FrameKind.HEARTBEAT, 1, 0)
        scratch = bytearray(HEADER_BYTES)
        segments = frame.encode_into(scratch)
        assert len(segments) == 1  # empty payload contributes no segment
        assert bytes(scratch) == encode_frame(frame)

    def test_segments_payload_passes_through_unjoined(self):
        payload = Segments([b"abc", b"defg"])
        frame = Frame(FrameKind.DATA, 0, 2, payload)
        segments = frame.encode_into(bytearray(HEADER_BYTES))
        assert len(segments) == 3  # header + both parts, never joined
        decoded = decode_frame(b"".join(segments))
        assert decoded.kind == FrameKind.DATA
        assert decoded.src == 0
        assert decoded.tag == 2
        assert bytes(decoded.payload) == b"abcdefg"

    def test_frame_nbytes_counts_segment_payloads(self):
        frame = Frame(FrameKind.DATA, 0, 0, Segments([b"ab", b"cd"]))
        assert frame.nbytes == HEADER_BYTES + 4

    def test_oversized_src_rejected(self):
        frame = Frame(FrameKind.DATA, 1 << 15, 0, b"")
        with pytest.raises(TransportError, match="int16"):
            frame.encode_into(bytearray(HEADER_BYTES))

    def test_scratch_reuse_across_frames(self):
        scratch = bytearray(HEADER_BYTES)
        first = Frame(FrameKind.DATA, 1, 5, b"xy")
        second = Frame(FrameKind.BYE, 2, 0)
        one = b"".join(first.encode_into(scratch))
        two = b"".join(second.encode_into(scratch))
        assert one == encode_frame(first)
        assert two == encode_frame(second)


class _ChunkySocket:
    """Fake socket whose ``sendmsg`` writes at most ``cap`` bytes per call
    and records how many buffers each call received."""

    def __init__(self, cap: int):
        self.cap = cap
        self.data = bytearray()
        self.iov_lens = []

    def sendmsg(self, buffers):
        self.iov_lens.append(len(buffers))
        written = 0
        for buf in buffers:
            take = min(len(buf), self.cap - written)
            self.data += bytes(buf[:take])
            written += take
            if written == self.cap:
                break
        return written


class TestSendmsgAll:
    def test_partial_sends_reassemble_exactly(self):
        segments = [memoryview(bytes([i]) * 100) for i in range(5)]
        sock = _ChunkySocket(cap=37)  # never a whole segment per call
        _sendmsg_all(sock, segments, 500)
        assert sock.data == b"".join(bytes([i]) * 100 for i in range(5))

    def test_single_byte_trickle(self):
        segments = [memoryview(b"hello"), memoryview(b" world")]
        sock = _ChunkySocket(cap=1)
        _sendmsg_all(sock, segments, 11)
        assert sock.data == b"hello world"

    def test_iov_cap_respected_for_many_segments(self):
        segments = [memoryview(b"x")] * (_IOV_CAP + 200)
        sock = _ChunkySocket(cap=1 << 20)
        _sendmsg_all(sock, segments, _IOV_CAP + 200)
        assert max(sock.iov_lens) <= _IOV_CAP
        assert len(sock.data) == _IOV_CAP + 200

    def test_empty_segments_skipped(self):
        segments = [memoryview(b""), memoryview(b"ab"), memoryview(b"")]
        sock = _ChunkySocket(cap=1 << 20)
        _sendmsg_all(sock, segments, 2)
        assert sock.data == b"ab"
        assert sock.iov_lens == [1]


class TestRecvArena:
    def test_take_returns_exact_window_over_size_class_slab(self):
        arena = RecvArena()
        view = arena.take(100)
        assert len(view) == 100
        assert isinstance(view.obj, bytearray)
        assert len(view.obj) == RecvArena.MIN_SLAB_BYTES

    def test_power_of_two_size_classes(self):
        arena = RecvArena()
        view = arena.take(5000)
        assert len(view.obj) == 8192
        arena.recycle(view)

    def test_recycle_enables_reuse(self):
        arena = RecvArena()
        first = arena.take(6000)
        created = arena.slabs_created
        arena.recycle(first)
        second = arena.take(5000)  # same 8192 size class
        assert arena.slabs_created == created  # no new slab
        assert arena.slabs_reused >= 1
        assert second.obj is first.obj
        arena.recycle(second)

    def test_warm_pool_serves_first_small_take(self):
        arena = RecvArena()
        assert arena.slabs_created == 1  # the warm slab
        arena.take(10)
        assert arena.slabs_created == 1
        assert arena.slabs_reused == 1

    def test_take_zero_and_negative(self):
        arena = RecvArena()
        assert len(arena.take(0)) == 0
        with pytest.raises(CommunicationError, match="-1"):
            arena.take(-1)

    def test_recycle_rejects_foreign_buffers(self):
        arena = RecvArena()
        with pytest.raises(CommunicationError, match="recycle"):
            arena.recycle(memoryview(b"immutable"))

    def test_header_view_is_persistent_scratch(self):
        arena = RecvArena()
        view = arena.header_view()
        assert len(view) == HEADER_BYTES
        view[0] = 0x41
        assert arena.header_view()[0] == 0x41  # same backing buffer

    def test_stats_shape(self):
        arena = RecvArena()
        arena.take(100)
        stats = arena.stats()
        assert set(stats) == {
            "allocated_bytes",
            "slabs_created",
            "slabs_reused",
            "slabs_pooled",
        }
        assert stats["allocated_bytes"] >= RecvArena.MIN_SLAB_BYTES


class TestDecodeFrameAliasing:
    def test_payload_aliases_input_buffer(self):
        frame = Frame(FrameKind.DATA, 0, 1, b"abcd")
        data = bytearray(encode_frame(frame))
        decoded = decode_frame(data)
        data[HEADER_BYTES] = ord("z")
        assert bytes(decoded.payload) == b"zbcd"  # view, not a copy
