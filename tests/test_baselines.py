"""Tests for the baselines: distributed FFTs, traditional conv, heFFTe model,
single-GPU dense convolution."""

import numpy as np
import pytest

from repro.baselines.distributed_fft import PencilDistributedFFT, SlabDistributedFFT
from repro.baselines.heffte_like import fft_compute_time, heffte_comm_time, scaling_curve
from repro.baselines.single_gpu import (
    dense_gpu_conv_bytes,
    max_dense_grid,
    run_dense_gpu_convolution,
)
from repro.baselines.traditional_conv import TraditionalDistributedConvolution
from repro.cluster.comm import SimulatedComm
from repro.cluster.device import V100_16GB, V100_32GB, XEON_GOLD_6148
from repro.cluster.memory import MemoryTracker
from repro.cluster.network import Link
from repro.core.reference import reference_convolve
from repro.errors import ConfigurationError, DeviceMemoryError
from repro.kernels.gaussian import GaussianKernel


class TestSlabFFT:
    def test_forward_matches_numpy(self, rng):
        n, p = 16, 4
        comm = SimulatedComm(p)
        fft = SlabDistributedFFT(n, comm)
        field = rng.standard_normal((n, n, n))
        spec_blocks = fft.forward(fft.scatter(field))
        spec = fft.gather_yslabs(spec_blocks)
        np.testing.assert_allclose(spec, np.fft.fftn(field), atol=1e-9)

    def test_roundtrip(self, rng):
        n, p = 8, 2
        comm = SimulatedComm(p)
        fft = SlabDistributedFFT(n, comm)
        field = rng.standard_normal((n, n, n))
        back = fft.gather_xslabs(fft.inverse(fft.forward(fft.scatter(field))))
        np.testing.assert_allclose(np.real(back), field, atol=1e-9)

    def test_one_alltoall_per_transform(self, rng):
        comm = SimulatedComm(4)
        fft = SlabDistributedFFT(16, comm)
        fft.forward(fft.scatter(rng.standard_normal((16, 16, 16))))
        assert comm.ledger.alltoall_rounds == 1

    def test_p_must_divide_n(self):
        with pytest.raises(ConfigurationError):
            SlabDistributedFFT(10, SimulatedComm(3))


class TestPencilFFT:
    def test_forward_matches_numpy(self, rng):
        n = 8
        comm = SimulatedComm(4)
        fft = PencilDistributedFFT(n, comm, px=2, py=2)
        field = rng.standard_normal((n, n, n))
        spec = fft.gather_final(fft.forward(fft.scatter(field)))
        np.testing.assert_allclose(spec, np.fft.fftn(field), atol=1e-9)

    def test_two_alltoalls_per_transform(self, rng):
        comm = SimulatedComm(4)
        fft = PencilDistributedFFT(8, comm, px=2, py=2)
        fft.forward(fft.scatter(rng.standard_normal((8, 8, 8))))
        assert comm.ledger.alltoall_rounds == 2

    def test_asymmetric_grid(self, rng):
        n = 8
        comm = SimulatedComm(2)
        fft = PencilDistributedFFT(n, comm, px=1, py=2)
        field = rng.standard_normal((n, n, n))
        spec = fft.gather_final(fft.forward(fft.scatter(field)))
        np.testing.assert_allclose(spec, np.fft.fftn(field), atol=1e-9)

    def test_grid_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            PencilDistributedFFT(8, SimulatedComm(4), px=3, py=2)


class TestTraditionalConvolution:
    @pytest.mark.parametrize("mode,expected_rounds", [("slab", 2), ("pencil", 4)])
    def test_exact_and_round_count(self, mode, expected_rounds, rng):
        n, p = 16, 4
        field = rng.standard_normal((n, n, n))
        spec = GaussianKernel(n=n, sigma=1.5).spectrum()
        comm = SimulatedComm(p)
        conv = TraditionalDistributedConvolution(n, comm, mode=mode)
        res = conv.convolve(field, spec)
        np.testing.assert_allclose(
            res.result, reference_convolve(field, spec), atol=1e-9
        )
        assert res.alltoall_rounds == expected_rounds
        assert res.comm_bytes > 0

    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            TraditionalDistributedConvolution(8, SimulatedComm(2), mode="magic")


class TestHeffteModel:
    def test_overlap_reduces_comm(self):
        link = Link()
        raw = heffte_comm_time(256, 64, link, overlap=0.0)
        hidden = heffte_comm_time(256, 64, link, overlap=0.8)
        assert hidden == pytest.approx(0.2 * raw)

    def test_invalid_overlap(self):
        with pytest.raises(ConfigurationError):
            heffte_comm_time(256, 64, Link(), overlap=1.0)

    def test_scaling_curve_heffte_never_slower(self):
        rows = scaling_curve(512, [4, 32, 256, 2048], XEON_GOLD_6148, Link())
        for _p, t_mpi, t_heffte in rows:
            assert t_heffte <= t_mpi

    def test_both_curves_flatten(self):
        """Past the communication crossover, doubling P stops helping."""
        rows = scaling_curve(256, [2, 8192, 16384], XEON_GOLD_6148, Link())
        _, t_small, _ = rows[0]
        _, t_a, _ = rows[1]
        _, t_b, _ = rows[2]
        assert t_a < t_small  # scaling helps initially
        assert t_b > 0.4 * t_a  # but flattens (no 2x gain from 2x workers)

    def test_compute_time_scales(self):
        t1 = fft_compute_time(256, 1, XEON_GOLD_6148)
        t8 = fft_compute_time(256, 8, XEON_GOLD_6148)
        assert t8 == pytest.approx(t1 / 8)


class TestSingleGPU:
    def test_paper_ceiling_1024_on_32gb(self):
        assert max_dense_grid(V100_32GB) == 1024

    def test_ceiling_512_on_16gb(self):
        assert max_dense_grid(V100_16GB) == 512

    def test_bytes_formula(self):
        n = 64
        assert dense_gpu_conv_bytes(n) == 2 * 16 * (n * n * (n // 2 + 1))

    def test_execution_with_tracker(self, rng):
        n = 8
        field = rng.standard_normal((n, n, n))
        spec = GaussianKernel(n=n, sigma=1.0).spectrum()
        mt = MemoryTracker(capacity_bytes=10**9)
        out = run_dense_gpu_convolution(field, spec, memory=mt)
        np.testing.assert_allclose(out, reference_convolve(field, spec), atol=1e-10)
        assert mt.current_bytes == 0
        assert mt.peak_bytes == dense_gpu_conv_bytes(n)

    def test_oom_when_capacity_small(self, rng):
        n = 16
        field = rng.standard_normal((n, n, n))
        spec = GaussianKernel(n=n, sigma=1.0).spectrum()
        mt = MemoryTracker(capacity_bytes=1024)
        with pytest.raises(DeviceMemoryError):
            run_dense_gpu_convolution(field, spec, memory=mt)
