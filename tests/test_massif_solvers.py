"""Tests for the MASSIF solvers: Algorithm 1, Algorithm 2, convergence."""

import numpy as np
import pytest

from repro.cluster.comm import SimulatedComm
from repro.core.policy import SamplingPolicy
from repro.errors import ConvergenceError, ShapeError
from repro.kernels.green_massif import LameParameters
from repro.massif.convergence import equilibrium_residual, strain_change
from repro.massif.elasticity import StiffnessField, isotropic_stiffness
from repro.massif.green_operator import gamma_convolve_dense
from repro.massif.lowcomm_solver import LowCommMassifSolver
from repro.massif.microstructure import sphere_inclusion
from repro.massif.solver import MassifSolver


@pytest.fixture
def two_phase():
    n = 16
    c0 = isotropic_stiffness(LameParameters.from_young_poisson(1.0, 0.3))
    c1 = isotropic_stiffness(LameParameters.from_young_poisson(5.0, 0.3))
    return StiffnessField(sphere_inclusion(n, radius=5), [c0, c1])


@pytest.fixture
def macro_strain():
    e = np.zeros((3, 3))
    e[0, 0] = 0.01
    return e


class TestConvergenceDiagnostics:
    def test_constant_stress_is_equilibrated(self):
        sigma = np.ones((3, 3, 8, 8, 8))
        assert equilibrium_residual(sigma) < 1e-12

    def test_oscillating_stress_not_equilibrated(self, rng):
        sigma = rng.standard_normal((3, 3, 8, 8, 8))
        assert equilibrium_residual(sigma) > 0.1

    def test_strain_change(self):
        a = np.ones((3, 3, 4, 4, 4))
        assert strain_change(a, a) == 0.0
        assert strain_change(1.1 * a, a) == pytest.approx(0.1)

    def test_shape_checks(self):
        with pytest.raises(ShapeError):
            equilibrium_residual(np.zeros((3, 3, 4, 4)))
        with pytest.raises(ShapeError):
            strain_change(np.zeros(3), np.zeros(4))


class TestGammaConvolveDense:
    def test_zero_stress_gives_zero(self):
        lame = LameParameters(lam=1.0, mu=1.0)
        out = gamma_convolve_dense(np.zeros((3, 3, 4, 4, 4)), lame)
        assert np.all(out == 0)

    def test_constant_stress_gives_zero(self):
        """Gamma annihilates the mean (xi = 0 mode)."""
        lame = LameParameters(lam=1.0, mu=1.0)
        out = gamma_convolve_dense(np.ones((3, 3, 4, 4, 4)), lame)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)


class TestAlgorithm1:
    def test_homogeneous_converges_immediately(self, macro_strain):
        n = 8
        c0 = isotropic_stiffness(LameParameters.from_young_poisson(1.0, 0.3))
        sf = StiffnessField(np.zeros((n, n, n), dtype=np.int64), [c0])
        rep = MassifSolver(sf, tol=1e-10).solve(macro_strain)
        assert rep.converged
        assert rep.iterations == 0
        expected = np.einsum("ijkl,kl->ij", c0, macro_strain)
        np.testing.assert_allclose(rep.effective_stress(), expected, atol=1e-12)

    def test_two_phase_converges(self, two_phase, macro_strain):
        rep = MassifSolver(two_phase, tol=1e-4, max_iter=200).solve(macro_strain)
        assert rep.converged
        assert rep.iterations > 0
        assert rep.residuals[-1] < 1e-4

    def test_mean_strain_prescribed(self, two_phase, macro_strain):
        rep = MassifSolver(two_phase, tol=1e-4, max_iter=200).solve(macro_strain)
        np.testing.assert_allclose(rep.effective_strain(), macro_strain, atol=1e-10)

    def test_residuals_decrease_overall(self, two_phase, macro_strain):
        rep = MassifSolver(two_phase, tol=1e-4, max_iter=200).solve(macro_strain)
        assert rep.residuals[-1] < rep.residuals[0]

    def test_effective_stress_between_bounds(self, two_phase, macro_strain):
        """Homogenized stiffness must lie between the phase moduli (here
        expressed on the dominant stress component)."""
        rep = MassifSolver(two_phase, tol=1e-4, max_iter=200).solve(macro_strain)
        c0 = two_phase.phase_tensors[0]
        c1 = two_phase.phase_tensors[1]
        s0 = np.einsum("ijkl,kl->ij", c0, macro_strain)[0, 0]
        s1 = np.einsum("ijkl,kl->ij", c1, macro_strain)[0, 0]
        eff = rep.effective_stress()[0, 0]
        assert min(s0, s1) < eff < max(s0, s1)

    def test_macro_strain_symmetrized(self, two_phase):
        e = np.zeros((3, 3))
        e[0, 1] = 0.02  # unsymmetric input
        rep = MassifSolver(two_phase, tol=1e-3, max_iter=200).solve(e)
        np.testing.assert_allclose(
            rep.effective_strain(), 0.5 * (e + e.T), atol=1e-10
        )

    def test_nonconvergence_raises(self, two_phase, macro_strain):
        with pytest.raises(ConvergenceError):
            MassifSolver(two_phase, tol=1e-12, max_iter=2).solve(macro_strain)

    def test_raise_on_fail_false(self, two_phase, macro_strain):
        rep = MassifSolver(
            two_phase, tol=1e-12, max_iter=2, raise_on_fail=False
        ).solve(macro_strain)
        assert not rep.converged

    def test_macro_shape_check(self, two_phase):
        with pytest.raises(ShapeError):
            MassifSolver(two_phase).solve(np.zeros((2, 2)))


class TestAlgorithm2:
    def test_lossless_matches_alg1_exactly(self, two_phase, macro_strain):
        """r = 1: the low-communication loop is bit-compatible with Alg 1."""
        rep1 = MassifSolver(two_phase, tol=1e-4, max_iter=100).solve(macro_strain)
        rep2 = LowCommMassifSolver(
            two_phase,
            k=8,
            policy=SamplingPolicy.flat_rate(1),
            tol=1e-4,
            max_iter=100,
            batch=64,
        ).solve(macro_strain)
        assert rep2.iterations == rep1.iterations
        np.testing.assert_allclose(rep2.strain, rep1.strain, atol=1e-8)

    def test_lossy_homogenized_output_close(self, two_phase, macro_strain):
        """r = 2: effective stress within ~1% of Alg 1 (paper's 'did not
        largely impact convergence')."""
        rep1 = MassifSolver(two_phase, tol=1e-4, max_iter=100).solve(macro_strain)
        rep2 = LowCommMassifSolver(
            two_phase,
            k=8,
            policy=SamplingPolicy.flat_rate(2),
            tol=1e-4,
            max_iter=100,
            batch=64,
            stall_window=8,
            raise_on_fail=False,
        ).solve(macro_strain)
        eff1 = rep1.effective_stress()[0, 0]
        eff2 = rep2.effective_stress()[0, 0]
        assert abs(eff2 - eff1) / abs(eff1) < 0.01

    def test_lossy_stalls_at_error_floor(self, two_phase, macro_strain):
        rep = LowCommMassifSolver(
            two_phase,
            k=8,
            policy=SamplingPolicy.flat_rate(2),
            tol=1e-8,
            max_iter=100,
            batch=64,
            stall_window=8,
            raise_on_fail=False,
        ).solve(macro_strain)
        assert rep.stalled
        assert min(rep.residuals) < 0.01  # floor well below initial residual

    def test_comm_ledger_one_round_per_iteration(self, two_phase, macro_strain):
        comm = SimulatedComm(4)
        rep = LowCommMassifSolver(
            two_phase,
            k=8,
            policy=SamplingPolicy.flat_rate(2),
            tol=1e-3,
            max_iter=50,
            batch=64,
            comm=comm,
            stall_window=8,
            raise_on_fail=False,
        ).solve(macro_strain)
        gamma_evals = rep.iterations if rep.converged else len(rep.residuals)
        assert comm.ledger.rounds_by_type.get("allgather", 0) <= gamma_evals + 1
        assert comm.ledger.alltoall_rounds == 0
