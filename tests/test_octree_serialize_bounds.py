"""Tests for the wire format and the a-priori error bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_subdomain_convolve
from repro.errors import ConfigurationError
from repro.kernels.gaussian import GaussianKernel
from repro.octree.compress import CompressedField
from repro.octree.error_bounds import (
    hessian_magnitude,
    pipeline_error_bound,
    radial_hessian_envelope,
    trilinear_cell_bound,
)
from repro.octree.interpolate import reconstruct_dense
from repro.octree.sampling import build_adaptive_pattern, build_flat_pattern
from repro.octree.serialize import deserialize_compressed, serialize_compressed
from repro.util.arrays import l2_relative_error


@pytest.fixture
def compressed_field(rng):
    pat = build_flat_pattern(16, 4, (4, 8, 0), r=2)
    dense = rng.standard_normal((16, 16, 16))
    return CompressedField.from_dense(dense, pat)


class TestSerialization:
    def test_roundtrip_values(self, compressed_field):
        payload = serialize_compressed(compressed_field)
        back = deserialize_compressed(payload)
        np.testing.assert_array_equal(back.values, compressed_field.values)

    def test_roundtrip_pattern(self, compressed_field):
        back = deserialize_compressed(serialize_compressed(compressed_field))
        assert back.pattern.n == compressed_field.pattern.n
        assert back.pattern.subdomain_corner == (4, 8, 0)
        assert back.pattern.subdomain_size == 4
        assert back.pattern.cells == compressed_field.pattern.cells

    def test_roundtrip_reconstruction_identical(self, compressed_field):
        back = deserialize_compressed(serialize_compressed(compressed_field))
        np.testing.assert_allclose(
            reconstruct_dense(back),
            reconstruct_dense(compressed_field),
            atol=1e-14,
        )

    def test_bad_magic(self, compressed_field):
        payload = bytearray(serialize_compressed(compressed_field))
        payload[0] ^= 0xFF
        with pytest.raises(ConfigurationError, match="magic"):
            deserialize_compressed(bytes(payload))

    def test_truncated_payload(self, compressed_field):
        payload = serialize_compressed(compressed_field)
        with pytest.raises(ConfigurationError):
            deserialize_compressed(payload[:-16])

    def test_too_short_for_header(self):
        with pytest.raises(ConfigurationError):
            deserialize_compressed(b"abc")

    def test_corrupted_metadata_detected(self, compressed_field):
        payload = bytearray(serialize_compressed(compressed_field))
        # cumulative-count field of the second cell sits at header + 9 int32
        offset = 9 * 8 + 9 * 4
        payload[offset] ^= 0x01
        with pytest.raises(ConfigurationError):
            deserialize_compressed(bytes(payload))

    def test_float32_roundtrip(self, compressed_field):
        payload64 = serialize_compressed(compressed_field)
        payload32 = serialize_compressed(compressed_field, precision="float32")
        assert len(payload32) < len(payload64)
        back = deserialize_compressed(payload32)
        np.testing.assert_allclose(
            back.values, compressed_field.values, rtol=1e-6, atol=1e-6
        )
        assert back.values.dtype == np.float64  # promoted on decode

    def test_float32_payload_half_values(self, compressed_field):
        m = compressed_field.pattern.sample_count
        payload64 = serialize_compressed(compressed_field)
        payload32 = serialize_compressed(compressed_field, precision="float32")
        assert len(payload64) - len(payload32) == 4 * m

    def test_unknown_precision_rejected(self, compressed_field):
        with pytest.raises(ConfigurationError):
            serialize_compressed(compressed_field, precision="float16")

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, seed):
        r = np.random.default_rng(seed)
        pat = build_adaptive_pattern(
            16, 4, (4, 4, 4), r_near=2, r_mid=4, r_far=4, min_cell=2
        )
        cf = CompressedField.from_dense(r.standard_normal((16, 16, 16)), pat)
        back = deserialize_compressed(serialize_compressed(cf))
        np.testing.assert_array_equal(back.values, cf.values)
        assert back.pattern.cells == cf.pattern.cells


def _legacy_payload(cf):
    """Hand-build the pre-magic headerless wire format."""
    pat = cf.pattern
    header = np.array(
        [
            pat.n,
            pat.subdomain_size,
            pat.subdomain_corner[0],
            pat.subdomain_corner[1],
            pat.subdomain_corner[2],
            pat.num_cells,
        ],
        dtype=np.int64,
    )
    return b"".join(
        [
            header.tobytes(),
            pat.metadata().astype(np.int32).tobytes(),
            pat.cell_sizes().astype(np.int32).tobytes(),
            np.ascontiguousarray(cf.values, dtype=np.float64).tobytes(),
        ]
    )


class TestLegacyFormat:
    def test_legacy_payload_accepted_with_warning(self, compressed_field):
        payload = _legacy_payload(compressed_field)
        with pytest.warns(DeprecationWarning, match="legacy headerless"):
            back = deserialize_compressed(payload)
        np.testing.assert_array_equal(back.values, compressed_field.values)
        assert back.pattern.cells == compressed_field.pattern.cells
        assert back.pattern.subdomain_corner == (4, 8, 0)

    def test_reserialized_legacy_has_header(self, compressed_field):
        with pytest.warns(DeprecationWarning):
            back = deserialize_compressed(_legacy_payload(compressed_field))
        fresh = serialize_compressed(back)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no DeprecationWarning expected
            again = deserialize_compressed(fresh)
        np.testing.assert_array_equal(again.values, compressed_field.values)

    def test_garbage_rejected_with_offset_context(self):
        garbage = bytes(range(256)) * 3
        with pytest.raises(ConfigurationError, match="offset 0"):
            deserialize_compressed(garbage)

    def test_implausible_legacy_geometry_rejected(self, compressed_field):
        payload = bytearray(_legacy_payload(compressed_field))
        payload[8:16] = np.int64(999).tobytes()  # k = 999 > n = 16
        with pytest.raises(ConfigurationError, match="offset 8"):
            deserialize_compressed(bytes(payload))

    def test_legacy_corner_out_of_grid(self, compressed_field):
        payload = bytearray(_legacy_payload(compressed_field))
        payload[16:24] = np.int64(-3).tobytes()  # cx < 0
        with pytest.raises(ConfigurationError, match="offset 16"):
            deserialize_compressed(bytes(payload))

    def test_version_mismatch_names_offset(self, compressed_field):
        payload = bytearray(serialize_compressed(compressed_field))
        payload[8:16] = np.int64(99).tobytes()  # version field
        with pytest.raises(ConfigurationError, match="version 99 at offset 8"):
            deserialize_compressed(bytes(payload))

    def test_truncated_legacy_body_rejected(self, compressed_field):
        payload = _legacy_payload(compressed_field)
        with pytest.raises(ConfigurationError):
            deserialize_compressed(payload[: 6 * 8 + 4])


class TestErrorBounds:
    def test_trilinear_bound_formula(self):
        assert trilinear_cell_bound(2.0, 0.5) == pytest.approx(0.375 * 4 * 0.5)

    def test_trilinear_bound_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            trilinear_cell_bound(-1.0, 1.0)

    def test_hessian_of_linear_field_is_zero(self):
        n = 8
        x = np.arange(n, dtype=float)
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        field = 2 * X - Y + 0.5 * Z
        # interior points (periodic wrap pollutes the boundary)
        h = hessian_magnitude(field)
        assert np.max(h[2:-2, 2:-2, 2:-2]) < 1e-10

    def test_hessian_of_quadratic(self):
        n = 16
        x = np.arange(n, dtype=float)
        X, _, _ = np.meshgrid(x, x, x, indexing="ij")
        field = X**2
        h = hessian_magnitude(field)
        # d2/dx2 = 2 everywhere away from the wrap
        assert h[5, 5, 5] == pytest.approx(2.0, abs=1e-10)

    def test_envelope_is_monotone(self):
        g = GaussianKernel(n=32, sigma=2.0).spatial()
        _radii, env = radial_hessian_envelope(g)
        assert (np.diff(env) <= 1e-12).all()

    def test_bound_dominates_measured_error(self):
        """The a-priori bound is an upper bound on the real L2 error."""
        n, k = 32, 8
        kernel = GaussianKernel(n=n, sigma=2.0)
        spec = kernel.spectrum()
        sub = np.ones((k, k, k))
        corner = (12, 12, 12)
        pol = SamplingPolicy.flat_rate(4)
        pattern = pol.pattern_for(n, k, corner)
        lc = LocalConvolution(n, spec, pol, batch=256)
        cf = lc.convolve(sub, corner, pattern=pattern)
        rec = reconstruct_dense(cf)
        exact = reference_subdomain_convolve(sub, corner, spec)
        measured_l2 = float(np.linalg.norm(rec - exact))
        bound = pipeline_error_bound(pattern, kernel.spatial(), input_l1=float(k**3))
        assert measured_l2 <= bound

    def test_bound_shrinks_with_finer_rates(self):
        n, k = 32, 8
        kernel = GaussianKernel(n=n, sigma=2.0).spatial()
        bounds = []
        for r in (2, 4, 8):
            pat = build_flat_pattern(n, k, (12, 12, 12), r=r)
            bounds.append(pipeline_error_bound(pat, kernel, input_l1=512.0))
        assert bounds[0] < bounds[1] < bounds[2]

    def test_dense_pattern_bound_zero(self):
        pat = build_flat_pattern(16, 4, (4, 4, 4), r=1)
        g = GaussianKernel(n=16, sigma=1.0).spatial()
        assert pipeline_error_bound(pat, g, input_l1=10.0) == 0.0

    def test_negative_l1_rejected(self):
        pat = build_flat_pattern(16, 4, (4, 4, 4), r=2)
        g = GaussianKernel(n=16, sigma=1.0).spatial()
        with pytest.raises(ConfigurationError):
            pipeline_error_bound(pat, g, input_l1=-1.0)
