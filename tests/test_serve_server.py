"""End-to-end serving tests: lifecycle, bitwise identity, concurrency."""

import threading

import numpy as np
import pytest

from repro.core.batch import BatchConvolver
from repro.core.pipeline import LowCommConvolution3D
from repro.core.policy import SamplingPolicy
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ServiceError,
    ShapeError,
)
from repro.kernels.gaussian import GaussianKernel
from repro.serve import (
    ConvolutionServer,
    ManualClock,
    RequestState,
    ServerConfig,
)
from repro.serve.loadgen import LoadSpec, parse_policy, run_serve_benchmark

N, K = 16, 4
POLICY = SamplingPolicy.flat_rate(4)


@pytest.fixture
def spectrum():
    return GaussianKernel(n=N, sigma=1.5).spectrum()


@pytest.fixture
def server(spectrum):
    srv = ConvolutionServer(
        ServerConfig(n=N, k=K, max_batch_size=4, max_wait_s=0.05,
                     default_policy=POLICY),
        clock=ManualClock(),
    )
    srv.register_kernel("g", spectrum)
    return srv


class TestServedResults:
    def test_bitwise_identical_to_direct_run(self, server, spectrum, rng):
        fields = [rng.standard_normal((N, N, N)) for _ in range(6)]
        handles = [server.submit(f, kernel="g") for f in fields]
        server.drain()
        direct = LowCommConvolution3D(N, K, spectrum, POLICY)
        for handle, field in zip(handles, fields):
            served = handle.result()
            expected = direct.run_serial(field)
            np.testing.assert_array_equal(served.approx, expected.approx)
            assert served.total_samples == expected.total_samples

    def test_result_is_full_convolution_result(self, server, rng):
        handle = server.submit(rng.standard_normal((N, N, N)), kernel="g")
        server.drain()
        result = handle.result()
        assert result.approx.shape == (N, N, N)
        assert result.num_subdomains == (N // K) ** 3
        assert result.compression_ratio > 1.0

    def test_engines_stay_warm_across_batches(self, server, rng):
        for _ in range(3):
            server.submit(rng.standard_normal((N, N, N)), kernel="g")
            server.drain()
        assert server.executor.engine_count == 1
        # one engine means one shared pattern cache across all batches
        engine = next(iter(server.executor._engines.values()))
        assert isinstance(engine, BatchConvolver)
        assert len(engine.pipeline._pattern_cache) == (N // K) ** 3


class TestLifecycle:
    def test_states_progress_to_done(self, server, rng):
        handle = server.submit(rng.standard_normal((N, N, N)), kernel="g")
        assert handle.state is RequestState.QUEUED
        assert not handle.done()
        server.drain()
        assert handle.state is RequestState.DONE
        assert handle.done()
        assert handle.exception() is None

    def test_handle_result_timeout(self, server, rng):
        handle = server.submit(rng.standard_normal((N, N, N)), kernel="g")
        with pytest.raises(TimeoutError):
            handle.result(timeout=0)

    def test_terminal_state_is_sticky(self, server, rng):
        handle = server.submit(rng.standard_normal((N, N, N)), kernel="g")
        server.drain()
        assert not handle._finish(RequestState.FAILED)  # already DONE
        assert handle.state is RequestState.DONE


class TestConfigValidation:
    def test_k_must_divide_n(self):
        with pytest.raises(ConfigurationError, match="must divide"):
            ConvolutionServer(ServerConfig(n=16, k=5))

    def test_kernel_shape_checked(self, server):
        with pytest.raises(ShapeError):
            server.register_kernel("bad", np.zeros((N, N)))

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            ConvolutionServer(ServerConfig(n=N, k=K, mode="quantum"))


class TestBackgroundServing:
    def test_background_thread_serves_real_traffic(self, spectrum, rng):
        # Real clock + daemon thread: the one test that exercises the
        # production loop (tiny problem, bounded by the handle timeout).
        server = ConvolutionServer(
            ServerConfig(n=N, k=K, max_batch_size=2, max_wait_s=0.005,
                         default_policy=POLICY)
        )
        server.register_kernel("g", spectrum)
        server.start()
        try:
            with pytest.raises(ConfigurationError, match="already started"):
                server.start()
            handles = [
                server.submit(rng.standard_normal((N, N, N)), kernel="g")
                for _ in range(3)
            ]
            results = [h.result(timeout=30) for h in handles]
            assert all(r.approx.shape == (N, N, N) for r in results)
        finally:
            server.stop()
        assert server.snapshot()["counters"]["requests_completed"] == 3

    def test_concurrent_submitters(self, spectrum, rng):
        server = ConvolutionServer(
            ServerConfig(n=N, k=K, max_batch_size=4, max_wait_s=0.005,
                         max_queue=64, default_policy=POLICY)
        )
        server.register_kernel("g", spectrum)
        server.start()
        collected = []
        lock = threading.Lock()

        def client(seed):
            local_rng = np.random.default_rng(seed)
            handle = server.submit(
                local_rng.standard_normal((N, N, N)), kernel="g"
            )
            result = handle.result(timeout=30)
            with lock:
                collected.append(result)

        try:
            threads = [threading.Thread(target=client, args=(s,)) for s in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        finally:
            server.stop()
        assert len(collected) == 6


class TestLoadgen:
    def test_load_spec_is_deterministic(self):
        a = LoadSpec(n=N, k=K, num_requests=3, seed=7).requests()
        b = LoadSpec(n=N, k=K, num_requests=3, seed=7).requests()
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x["field"], y["field"])
            assert x["kernel"] == y["kernel"]

    def test_parse_policy(self):
        assert parse_policy("flat:3").flat == 3
        assert parse_policy("banded").flat is None
        with pytest.raises(ConfigurationError):
            parse_policy("flat:x")
        with pytest.raises(ConfigurationError):
            parse_policy("nope")

    def test_benchmark_tiny_stream_bitwise_identical(self):
        spec = LoadSpec(n=N, k=K, num_requests=5, num_kernels=2,
                        policy="flat:4", seed=3)
        config = ServerConfig(n=N, k=K, max_batch_size=2, max_wait_s=0.005)
        report = run_serve_benchmark(spec, config)
        assert report.bitwise_identical
        assert report.batches >= 2  # two kernels -> at least two batches
        assert report.naive_s > 0 and report.batched_s > 0


class TestShutdown:
    def test_shutdown_drains_in_flight_requests(self, server, rng):
        handles = [
            server.submit(rng.standard_normal((N, N, N)), kernel="g")
            for _ in range(3)
        ]
        summary = server.shutdown(drain=True)
        assert summary == {
            "drained": 3, "cancelled": 0, "already_shut_down": False,
        }
        assert all(h.state is RequestState.DONE for h in handles)
        assert len(server.queue) == 0

    def test_shutdown_without_drain_cancels_with_recorded_outcome(
        self, server, rng
    ):
        handles = [
            server.submit(rng.standard_normal((N, N, N)), kernel="g")
            for _ in range(2)
        ]
        summary = server.shutdown(drain=False)
        assert summary["cancelled"] == 2
        for h in handles:
            assert h.state is RequestState.FAILED
            with pytest.raises(ServiceError, match="cancelled by shutdown"):
                h.result(timeout=0)
        assert server.snapshot()["counters"]["requests_cancelled"] == 2

    def test_double_shutdown_is_idempotent(self, server, rng):
        server.submit(rng.standard_normal((N, N, N)), kernel="g")
        first = server.shutdown()
        second = server.shutdown()
        third = server.shutdown(drain=False)
        assert not first["already_shut_down"]
        assert second == {
            "drained": 0, "cancelled": 0, "already_shut_down": True,
        }
        assert third["already_shut_down"]

    def test_submit_after_shutdown_is_rejected(self, server, rng):
        server.shutdown()
        handle = server.submit(rng.standard_normal((N, N, N)), kernel="g")
        assert handle.state is RequestState.REJECTED
        with pytest.raises(AdmissionError, match="shut down"):
            handle.result(timeout=0)
        assert server.snapshot()["server"]["shut_down"]

    def test_shutdown_stops_background_loop(self, spectrum):
        server = ConvolutionServer(
            ServerConfig(n=N, k=K, max_wait_s=0.005, default_policy=POLICY)
        )
        server.register_kernel("g", spectrum)
        server.start()
        assert server._thread is not None
        server.shutdown()
        assert server._thread is None
