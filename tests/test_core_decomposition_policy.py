"""Tests for domain decomposition and sampling policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import DomainDecomposition
from repro.core.policy import SamplingPolicy
from repro.errors import ConfigurationError, ShapeError
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.poisson import PoissonKernel


class TestDomainDecomposition:
    def test_counts(self):
        d = DomainDecomposition(n=32, k=8)
        assert d.domains_per_axis == 4
        assert d.num_domains == 64
        assert len(d) == 64

    def test_subdomains_tile_grid(self):
        d = DomainDecomposition(n=16, k=4)
        seen = np.zeros((16, 16, 16), dtype=int)
        for sub in d:
            seen[sub.slices()] += 1
        assert (seen == 1).all()

    def test_index_roundtrip(self):
        d = DomainDecomposition(n=16, k=4)
        for sub in d:
            assert d.subdomain(sub.index) == sub

    def test_owner_of(self):
        d = DomainDecomposition(n=16, k=4)
        sub = d.owner_of((5, 9, 14))
        assert sub.corner == (4, 8, 12)
        assert sub.contains_point if False else True

    def test_owner_out_of_range(self):
        with pytest.raises(ConfigurationError):
            DomainDecomposition(n=16, k=4).owner_of((16, 0, 0))

    def test_extract(self, rng):
        d = DomainDecomposition(n=8, k=4)
        field = rng.standard_normal((8, 8, 8))
        sub = d.subdomain(3)
        np.testing.assert_array_equal(d.extract(field, sub), field[sub.slices()])

    def test_extract_shape_check(self):
        d = DomainDecomposition(n=8, k=4)
        with pytest.raises(ShapeError):
            d.extract(np.zeros((4, 4, 4)), d.subdomain(0))

    def test_round_robin_covers_all(self):
        d = DomainDecomposition(n=16, k=4)
        buckets = d.assign_round_robin(3)
        indices = sorted(s.index for b in buckets for s in b)
        assert indices == list(range(64))
        sizes = [len(b) for b in buckets]
        assert max(sizes) - min(sizes) <= 1

    def test_k_must_divide_n(self):
        with pytest.raises(ConfigurationError):
            DomainDecomposition(n=10, k=3)

    def test_k_gt_n_rejected(self):
        with pytest.raises(ConfigurationError):
            DomainDecomposition(n=4, k=8)

    def test_bad_index(self):
        with pytest.raises(ConfigurationError):
            DomainDecomposition(n=8, k=4).subdomain(99)

    @given(st.sampled_from([8, 16, 32]), st.sampled_from([2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_owner_consistency_property(self, n, k):
        if k > n:
            return
        d = DomainDecomposition(n=n, k=k)
        r = np.random.default_rng(0)
        for _ in range(10):
            p = tuple(int(x) for x in r.integers(0, n, size=3))
            sub = d.owner_of(p)
            assert all(c <= x < c + k for c, x in zip(sub.corner, p))


class TestSamplingPolicy:
    def test_defaults_are_papers(self):
        pol = SamplingPolicy()
        assert (pol.r_near, pol.r_mid, pol.r_far) == (2, 8, 32)

    def test_flat_rate(self):
        pol = SamplingPolicy.flat_rate(4)
        pat = pol.pattern_for(16, 4, (4, 4, 4))
        rates = {c.rate for c in pat.cells}
        assert rates <= {1, 4}

    def test_with_flat(self):
        pol = SamplingPolicy().with_flat(8)
        assert pol.flat == 8

    def test_banded_pattern_rates(self):
        pol = SamplingPolicy(r_near=2, r_mid=4, r_far=8)
        pat = pol.pattern_for(32, 8, (12, 12, 12))
        assert set(pat.rate_histogram()) <= {1, 2, 4, 8}

    def test_average_rate(self):
        assert SamplingPolicy.flat_rate(8).average_rate() == 8.0
        assert SamplingPolicy(r_mid=4, r_far=16).average_rate() == pytest.approx(8.0)

    def test_rates_must_be_monotone(self):
        with pytest.raises(ConfigurationError):
            SamplingPolicy(r_near=8, r_mid=4, r_far=16)

    def test_from_kernel_sharp_gaussian(self):
        g = GaussianKernel(n=32, sigma=1.0).spatial()
        pol = SamplingPolicy.from_kernel(g, k=8)
        assert pol.r_far == 32  # fast decay permits aggressive far rate

    def test_from_kernel_slow_decay(self):
        g = PoissonKernel(n=32).spatial()
        pol = SamplingPolicy.from_kernel(g, k=8)
        assert pol.r_far <= 32

    def test_from_kernel_tight_budget(self):
        g = GaussianKernel(n=32, sigma=1.0).spatial()
        pol = SamplingPolicy.from_kernel(g, k=8, error_budget=0.005)
        assert pol.r_near == 1

    def test_from_kernel_bad_budget(self):
        g = GaussianKernel(n=16, sigma=1.0).spatial()
        with pytest.raises(ConfigurationError):
            SamplingPolicy.from_kernel(g, k=4, error_budget=2.0)
