"""Tests for free-space (non-circular) convolution."""

import numpy as np
import pytest
from scipy.ndimage import convolve as nd_convolve

from repro.core.linear_conv import (
    LinearConvolution3D,
    embed_kernel_freespace,
    reference_linear_convolve,
)
from repro.core.policy import SamplingPolicy
from repro.errors import ConfigurationError, ShapeError
from repro.util.arrays import centered_gaussian, l2_relative_error


@pytest.fixture
def setup(rng):
    n, k = 16, 8
    kern = centered_gaussian(n, 1.5)
    field = rng.standard_normal((n, n, n))
    return n, k, kern, field


class TestReferenceLinear:
    def test_matches_direct_convolution(self, setup):
        """Free-space result agrees with direct (zero-boundary) convolution
        up to the kernel's window truncation."""
        n, k, kern, field = setup
        ref = reference_linear_convolve(field, kern)
        direct = nd_convolve(field, kern, mode="constant", cval=0.0)
        assert np.abs(ref - direct).max() < 1e-4

    def test_no_wraparound(self):
        """An impulse near one face must NOT leak to the opposite face —
        the defining difference from circular convolution."""
        n = 16
        kern = centered_gaussian(n, 2.0)
        field = np.zeros((n, n, n))
        field[0, 8, 8] = 1.0
        out = reference_linear_convolve(field, kern)
        # circular convolution would put kern's tail at x = n-1
        assert out[n - 1, 8, 8] < 1e-12
        assert out[0, 8, 8] == pytest.approx(kern.max(), rel=1e-6)

    def test_circular_would_wrap(self):
        """Sanity: the circular version DOES wrap (contrast case)."""
        from repro.kernels.gaussian import GaussianKernel

        n = 16
        g = GaussianKernel(n=n, sigma=2.0)
        field = np.zeros((n, n, n))
        field[0, 8, 8] = 1.0
        out = g.convolve_dense(field)
        assert out[n - 1, 8, 8] > 1e-3

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            reference_linear_convolve(np.zeros((8, 8, 8)), np.zeros((4, 4, 4)))


class TestEmbedKernel:
    def test_padded_shape(self):
        spec = embed_kernel_freespace(centered_gaussian(8, 1.0))
        assert spec.shape == (16, 16, 16)

    def test_symmetric_kernel_real_spectrum(self):
        spec = embed_kernel_freespace(centered_gaussian(8, 1.0))
        assert np.isrealobj(spec)

    def test_rejects_non_cube(self):
        with pytest.raises(ShapeError):
            embed_kernel_freespace(np.zeros((4, 6, 4)))


class TestLinearPipeline:
    def test_lossless_matches_reference(self, setup):
        n, k, kern, field = setup
        spec = embed_kernel_freespace(kern)
        lin = LinearConvolution3D(n, k, spec, SamplingPolicy.flat_rate(1), batch=256)
        res = lin.run(field)
        ref = reference_linear_convolve(field, kern)
        np.testing.assert_allclose(res.approx, ref, atol=1e-10)

    def test_output_shape_is_physical_grid(self, setup):
        n, k, kern, field = setup
        spec = embed_kernel_freespace(kern)
        lin = LinearConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=256)
        assert lin.run(field).approx.shape == (n, n, n)

    def test_padding_octants_skipped(self, setup):
        """Only the physical octant's sub-domains are processed — the
        padding is free on the input side."""
        n, k, kern, field = setup
        spec = embed_kernel_freespace(kern)
        lin = LinearConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=256)
        res = lin.run(field)
        assert res.num_subdomains == (n // k) ** 3  # 1/8 of the padded grid

    def test_lossy_error_bounded(self, setup):
        n, k, kern, field = setup
        spec = embed_kernel_freespace(kern)
        lin = LinearConvolution3D(n, k, spec, SamplingPolicy.flat_rate(2), batch=256)
        res = lin.run(field)
        ref = reference_linear_convolve(field, kern)
        assert l2_relative_error(res.approx, ref) < 0.1

    def test_spectrum_shape_validated(self, setup):
        n, k, kern, _ = setup
        with pytest.raises(ConfigurationError):
            LinearConvolution3D(n, k, np.zeros((n, n, n)))

    def test_field_shape_validated(self, setup):
        n, k, kern, _ = setup
        spec = embed_kernel_freespace(kern)
        lin = LinearConvolution3D(n, k, spec)
        with pytest.raises(ShapeError):
            lin.run(np.zeros((n + 1,) * 3))
