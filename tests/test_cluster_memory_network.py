"""Tests for the memory ledger and alpha-beta network models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.memory import MemoryTracker
from repro.cluster.network import Link, Network
from repro.errors import ConfigurationError, DeviceMemoryError


class TestMemoryTracker:
    def test_alloc_free_cycle(self):
        mt = MemoryTracker(capacity_bytes=100)
        a = mt.alloc("buf", 60)
        assert mt.current_bytes == 60
        mt.free(a)
        assert mt.current_bytes == 0
        assert mt.peak_bytes == 60

    def test_oom_raises_with_details(self):
        mt = MemoryTracker(capacity_bytes=100, device_name="gpu0")
        mt.alloc("a", 80)
        with pytest.raises(DeviceMemoryError) as exc:
            mt.alloc("b", 40)
        assert exc.value.requested == 40
        assert exc.value.available == 20
        assert "gpu0" in str(exc.value)

    def test_oom_leaves_state_unchanged(self):
        mt = MemoryTracker(capacity_bytes=100)
        mt.alloc("a", 80)
        with pytest.raises(DeviceMemoryError):
            mt.alloc("b", 40)
        assert mt.current_bytes == 80

    def test_double_free_raises(self):
        mt = MemoryTracker()
        a = mt.alloc("a", 10)
        mt.free(a)
        with pytest.raises(ConfigurationError):
            mt.free(a)

    def test_context_manager_frees(self):
        mt = MemoryTracker(capacity_bytes=50)
        with mt.allocate("scoped", 30):
            assert mt.current_bytes == 30
        assert mt.current_bytes == 0

    def test_context_manager_frees_on_exception(self):
        mt = MemoryTracker()
        with pytest.raises(RuntimeError):
            with mt.allocate("scoped", 30):
                raise RuntimeError("boom")
        assert mt.current_bytes == 0

    def test_unbounded_tracker(self):
        mt = MemoryTracker()
        mt.alloc("huge", 10**15)
        assert mt.would_fit(10**18)

    def test_would_fit(self):
        mt = MemoryTracker(capacity_bytes=100)
        mt.alloc("a", 70)
        assert mt.would_fit(30)
        assert not mt.would_fit(31)

    def test_events_ledger(self):
        mt = MemoryTracker()
        a = mt.alloc("x", 5)
        mt.free(a)
        assert mt.events == [("alloc", "x", 5), ("free", "x", 5)]

    def test_reset_peak(self):
        mt = MemoryTracker()
        a = mt.alloc("a", 50)
        mt.free(a)
        mt.reset_peak()
        assert mt.peak_bytes == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryTracker(capacity_bytes=0)

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_ledger_never_negative(self, sizes):
        """Property: any alloc/free interleaving keeps usage in [0, sum]."""
        mt = MemoryTracker()
        live = []
        for i, size in enumerate(sizes):
            if live and i % 3 == 0:
                mt.free(live.pop())
            else:
                live.append(mt.alloc(f"b{i}", size))
            assert 0 <= mt.current_bytes <= mt.peak_bytes


class TestLink:
    def test_message_time_eq2(self):
        link = Link(alpha_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert link.message_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_zero_bytes_costs_alpha(self):
        link = Link(alpha_s=5e-6)
        assert link.message_time(0) == pytest.approx(5e-6)

    def test_beta_is_reciprocal_bandwidth(self):
        link = Link(bandwidth_bytes_per_s=2e9)
        assert link.beta_cost_s_per_byte == pytest.approx(0.5e-9)

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigurationError):
            Link().message_time(-1)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            Link(bandwidth_bytes_per_s=0)


class TestNetwork:
    def test_single_worker_free(self):
        net = Network(num_workers=1)
        assert net.alltoall_time(100) == 0.0
        assert net.broadcast_time(100) == 0.0

    def test_alltoall_scales_with_p(self):
        link = Link(alpha_s=0.0, bandwidth_bytes_per_s=1e9)
        t4 = Network(4, link).alltoall_time(1000)
        t8 = Network(8, link).alltoall_time(1000)
        assert t8 > t4

    def test_broadcast_log_steps(self):
        link = Link(alpha_s=1.0, bandwidth_bytes_per_s=1e30)
        assert Network(8, link).broadcast_time(1) == pytest.approx(3.0)
        assert Network(9, link).broadcast_time(1) == pytest.approx(4.0)

    def test_monotone_in_message_size(self):
        net = Network(4)
        assert net.alltoall_time(2000) > net.alltoall_time(1000)

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            Network(0)
