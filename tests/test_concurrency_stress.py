"""Concurrency stress: real serve/dist paths under the runtime lock watcher.

These tests build the actual systems under test *inside* a
:func:`~repro.analysis.lockwatch.lockwatch` block — so every lock the
batching server, the in-process rank fabric, and the TCP transport
create is instrumented — then drive them from multiple threads with
barrier-synchronized starts (every round releases all threads at once,
letting the OS scheduler pick a fresh interleaving).  The acceptance
property is a clean dynamic lock graph: no acquisition-order cycles and
no blocking calls under a non-I/O lock, for any observed interleaving.

The final test injects a deliberate ABBA inversion into the same harness
and asserts the watcher convicts it with a usable witness — proving the
clean runs above are meaningful, not vacuous.
"""

import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.analysis.lockwatch import lockwatch
from repro.dist.collectives import Communicator
from repro.dist.tcp import TcpTransport
from repro.dist.transport import LocalFabric
from repro.errors import ConcurrencyViolation
from repro.kernels.gaussian import GaussianKernel
from repro.serve import ConvolutionServer, ManualClock, ServerConfig

N, K = 16, 4
ROUNDS = 3


def _join_all(threads, timeout=30):
    for t in threads:
        t.join(timeout=timeout)
        assert not t.is_alive(), f"thread {t.name} wedged past deadline"


class TestServeUnderLockwatch:
    def test_batched_serving_lock_graph_is_clean(self, rng):
        spectrum = GaussianKernel(n=N, sigma=1.5).spectrum()
        fields = [rng.standard_normal((N, N, N)) for _ in range(8)]
        with lockwatch() as watcher:
            server = ConvolutionServer(
                ServerConfig(n=N, k=K, max_batch_size=4, max_wait_s=0.05),
                clock=ManualClock(),
            )
            server.register_kernel("g", spectrum)
            for _round in range(ROUNDS):
                barrier = threading.Barrier(4)
                handles = [[] for _ in range(4)]

                def client(slot, barrier=barrier, handles=handles):
                    barrier.wait(timeout=10)
                    for field in fields[slot * 2 : slot * 2 + 2]:
                        handles[slot].append(
                            server.submit(field, kernel="g")
                        )

                threads = [
                    threading.Thread(
                        target=client, args=(i,), name=f"client-{i}"
                    )
                    for i in range(4)
                ]
                for t in threads:
                    t.start()
                _join_all(threads)
                server.drain()
                for slot in range(4):
                    for handle in handles[slot]:
                        assert handle.result(timeout=0).approx.shape == (
                            N, N, N,
                        )
        report = watcher.report()
        assert report.cycles == [], report.witness()
        assert report.blocking == [], report.witness()
        report.check()


class TestLocalFabricUnderLockwatch:
    def test_four_rank_sparse_exchange_is_clean(self):
        with lockwatch() as watcher:
            fabric = LocalFabric(4)
            comms = [
                Communicator(fabric.endpoint(r), recv_timeout_s=20)
                for r in range(4)
            ]
            for _round in range(ROUNDS):
                barrier = threading.Barrier(4)
                gathered = [None] * 4

                def rank_body(rank, barrier=barrier, gathered=gathered):
                    barrier.wait(timeout=10)
                    payload = bytes([rank]) * (rank + 1)
                    gathered[rank] = comms[rank].sparse_allgather(
                        payload, tag=7
                    )

                threads = [
                    threading.Thread(
                        target=rank_body, args=(r,), name=f"rank-{r}"
                    )
                    for r in range(4)
                ]
                for t in threads:
                    t.start()
                _join_all(threads)
                for rank in range(4):
                    assert gathered[rank] == [
                        bytes([src]) * (src + 1) for src in range(4)
                    ]
            for comm in comms:
                comm.close()
        report = watcher.report()
        assert report.cycles == [], report.witness()
        assert report.blocking == [], report.witness()


class TestStreamedExchangeUnderLockwatch:
    """The overlap path adds a pump thread per rank (the bounded
    :class:`~repro.dist.transport.SendWindow`) that holds transport send
    locks while the rank's main thread keeps pushing — exactly the shape
    where an ordering cycle between queue, ledger, and mailbox locks
    would hide.  Drive it with uneven chunk counts per rank so the fast
    ranks' end markers race the slow ranks' mid-stream chunks."""

    def _expected(self, size):
        return [
            [bytes([src]) * 32] * (src + 1) for src in range(size)
        ]

    def _rank_body(self, comm, rank, barrier, gathered):
        barrier.wait(timeout=10)
        stream = comm.sparse_allgather_stream(tag=9, end_tag=11, window=2)
        for _chunk in range(rank + 1):  # uneven: rank r pushes r+1 chunks
            stream.push(bytes([rank]) * 32)
        gathered[rank] = stream.finish(timeout=20)

    def test_four_rank_streamed_exchange_is_clean(self):
        with lockwatch() as watcher:
            fabric = LocalFabric(4)
            comms = [
                Communicator(fabric.endpoint(r), recv_timeout_s=20)
                for r in range(4)
            ]
            for _round in range(ROUNDS):
                barrier = threading.Barrier(4)
                gathered = [None] * 4
                threads = [
                    threading.Thread(
                        target=self._rank_body,
                        args=(comms[r], r, barrier, gathered),
                        name=f"stream-rank-{r}",
                    )
                    for r in range(4)
                ]
                for t in threads:
                    t.start()
                _join_all(threads)
                for rank in range(4):
                    assert gathered[rank] == self._expected(4)
            for comm in comms:
                comm.close()
        report = watcher.report()
        assert report.cycles == [], report.witness()
        assert report.blocking == [], report.witness()

    def test_live_tcp_streamed_exchange_is_clean(self):
        with lockwatch() as watcher:
            listeners, ports = [], []
            for _ in range(2):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.bind(("127.0.0.1", 0))
                sock.listen(2)
                listeners.append(sock)
                ports.append(sock.getsockname()[1])
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(TcpTransport, rank, 2, ports, listeners[rank])
                    for rank in range(2)
                ]
                transports = [f.result(timeout=20) for f in futures]
            try:
                comms = [
                    Communicator(t, recv_timeout_s=20) for t in transports
                ]
                for _round in range(ROUNDS):
                    barrier = threading.Barrier(2)
                    gathered = [None] * 2
                    threads = [
                        threading.Thread(
                            target=self._rank_body,
                            args=(comms[r], r, barrier, gathered),
                            name=f"tcp-stream-rank-{r}",
                        )
                        for r in range(2)
                    ]
                    for t in threads:
                        t.start()
                    _join_all(threads)
                    for rank in range(2):
                        assert gathered[rank] == self._expected(2)
            finally:
                for t in transports:
                    t.close()
        report = watcher.report()
        assert report.cycles == [], report.witness()
        assert report.blocking == [], report.witness()


class TestTcpUnderLockwatch:
    def test_tcp_exchange_is_cycle_free(self):
        with lockwatch() as watcher:
            listeners, ports = [], []
            for _ in range(2):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.bind(("127.0.0.1", 0))
                sock.listen(2)
                listeners.append(sock)
                ports.append(sock.getsockname()[1])
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(TcpTransport, rank, 2, ports, listeners[rank])
                    for rank in range(2)
                ]
                transports = [f.result(timeout=20) for f in futures]
            try:
                comms = [
                    Communicator(t, recv_timeout_s=20) for t in transports
                ]
                barrier = threading.Barrier(2)
                gathered = [None] * 2

                def rank_body(rank):
                    barrier.wait(timeout=10)
                    gathered[rank] = comms[rank].sparse_allgather(
                        bytes([rank]) * 64, tag=3
                    )

                threads = [
                    threading.Thread(
                        target=rank_body, args=(r,), name=f"tcp-rank-{r}"
                    )
                    for r in range(2)
                ]
                for t in threads:
                    t.start()
                _join_all(threads)
                for rank in range(2):
                    assert gathered[rank] == [b"\x00" * 64, b"\x01" * 64]
            finally:
                for t in transports:
                    t.close()
        report = watcher.report()
        # the per-peer send locks are I/O-exempt by name, so a clean run
        # means: no ordering cycles, and no blocking under any state lock
        assert report.cycles == [], report.witness()
        assert report.blocking == [], report.witness()


class TestInjectedInversion:
    def test_inversion_inside_stress_harness_is_convicted(self):
        with lockwatch() as watcher:
            queue_lock = threading.Lock()
            state_lock = threading.Lock()
            inner_done = threading.Event()

            def drain_path():
                for _ in range(ROUNDS):
                    with queue_lock:
                        with state_lock:
                            pass

            def refill_path():
                for _ in range(ROUNDS):
                    with state_lock:
                        with queue_lock:
                            pass
                inner_done.set()

            threads = [
                threading.Thread(target=drain_path, name="drain"),
                threading.Thread(target=refill_path, name="refill"),
            ]
            for t in threads:
                t.start()
            _join_all(threads)
            assert inner_done.wait(timeout=5)
        report = watcher.report()
        assert len(report.cycles) == 1
        with pytest.raises(ConcurrencyViolation) as exc:
            report.check()
        witness = exc.value.report.witness()
        assert "queue_lock" in witness and "state_lock" in witness
        assert "drain" in witness and "refill" in witness
        assert "CYCLE:" in witness
