"""Reusable deterministic fault schedules for chaos tests.

A :class:`FaultSchedule` is the test-side owner of *when* a rank dies:
it plugs into the :data:`~repro.serve.dist_backend.JobHook` seam of
:class:`~repro.serve.dist_backend.PoolBackend` and rewrites the chosen
job's :class:`~repro.dist.worker.DistConfig` with ``fail_rank`` /
``fail_stage`` — the same in-band injection the dist runtime's own
fault tests use, so the kill is exact (that rank calls ``os._exit`` at
that pipeline stage) and perfectly reproducible.

Triggers are deterministic two ways:

- **by job index** (``job_index=3`` kills during the third pool job the
  backend submits), independent of wall time; or
- **by clock time** (``at_s=1.5`` kills the first job submitted at or
  after that instant on the *injected* clock), which composes with
  :class:`~repro.serve.clock.ManualClock` timelines.

Each :class:`KillAt` fires at most once; ``schedule.fired`` records
what actually triggered so tests can assert the fault really happened
(a chaos test that silently injects nothing proves nothing).
"""

from dataclasses import dataclass, replace as dataclass_replace
from typing import List, Optional

from repro.serve.clock import Clock


@dataclass
class KillAt:
    """One scheduled rank death.

    Exactly one of ``job_index`` (1-based backend job counter) or
    ``at_s`` (injected-clock time) selects the victim job; ``rank`` and
    ``stage`` select where in that job the rank dies (stage must be a
    :data:`~repro.dist.worker.FAIL_STAGES` member).
    """

    rank: int
    stage: str = "before_checkpoint"
    job_index: Optional[int] = None
    at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.job_index is None) == (self.at_s is None):
            raise ValueError("set exactly one of job_index or at_s")


class FaultSchedule:
    """Deterministic kill schedule, pluggable as a PoolBackend job hook.

    Usage::

        schedule = FaultSchedule([KillAt(rank=2, job_index=3)])
        backend = PoolBackend({"p0": pool}, job_hook=schedule.job_hook)
        ...
        assert schedule.fired  # the kill actually triggered
    """

    def __init__(self, kills: List[KillAt], clock: Optional[Clock] = None):
        self.kills = list(kills)
        self.clock = clock
        #: (job_index, KillAt) pairs that actually injected a failure
        self.fired: List[tuple] = []
        self._pending = list(self.kills)

    def job_hook(self, job_index: int, config):
        """The :data:`~repro.serve.dist_backend.JobHook` entry point."""
        for kill in list(self._pending):
            if kill.job_index is not None:
                due = job_index == kill.job_index
            else:
                if self.clock is None:
                    raise ValueError("at_s kills need a FaultSchedule clock")
                due = self.clock.now() >= kill.at_s
            if not due:
                continue
            self._pending.remove(kill)
            self.fired.append((job_index, kill))
            return dataclass_replace(
                config, fail_rank=kill.rank, fail_stage=kill.stage
            )
        return config

    @classmethod
    def single(
        cls,
        job_index: int,
        rank: int = 1,
        stage: str = "before_checkpoint",
    ) -> "FaultSchedule":
        """The common case: kill ``rank`` during job ``job_index``."""
        return cls([KillAt(rank=rank, stage=stage, job_index=job_index)])
