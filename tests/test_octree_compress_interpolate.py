"""Tests for CompressedField and the reconstruction operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.octree.compress import CompressedField
from repro.octree.interpolate import reconstruct_box, reconstruct_dense
from repro.octree.sampling import build_adaptive_pattern, build_flat_pattern


@pytest.fixture
def pattern32():
    return build_flat_pattern(32, 8, (12, 12, 12), r=4)


@pytest.fixture
def smooth_field():
    n = 32
    x = np.arange(n) - 15.5
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    return np.exp(-(X**2 + Y**2 + Z**2) / (2 * 8.0**2))


class TestCompressedField:
    def test_from_dense_extracts_sample_values(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        coords = pattern32.sample_coords
        np.testing.assert_array_equal(
            cf.values, smooth_field[coords[:, 0], coords[:, 1], coords[:, 2]]
        )

    def test_wrong_shape_rejected(self, pattern32):
        with pytest.raises(ShapeError):
            CompressedField.from_dense(np.zeros((16, 16, 16)), pattern32)

    def test_value_count_validated(self, pattern32):
        with pytest.raises(ShapeError):
            CompressedField(pattern=pattern32, values=np.zeros(3))

    def test_nbytes_includes_metadata(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        assert cf.nbytes == cf.values.nbytes + pattern32.metadata_nbytes()

    def test_cell_values_block(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        block = cf.cell_values(0)
        cell = pattern32.cells[0]
        assert block.shape == (cell.samples_per_axis,) * 3
        # first sample of first cell is the first value
        assert block.ravel()[0] == cf.values[0]

    def test_cell_values_bad_index(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        with pytest.raises(ConfigurationError):
            cf.cell_values(10**6)

    def test_scatter_to_dense_exact_at_samples(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        scattered = cf.scatter_to_dense()
        coords = pattern32.sample_coords
        np.testing.assert_array_equal(
            scattered[coords[:, 0], coords[:, 1], coords[:, 2]], cf.values
        )

    def test_compression_summary(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        samples, nbytes, ratio = cf.compression_summary()
        assert samples == pattern32.sample_count
        assert ratio > 1


class TestReconstruction:
    def test_exact_at_sample_points(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        rec = reconstruct_dense(cf)
        coords = pattern32.sample_coords
        np.testing.assert_allclose(
            rec[coords[:, 0], coords[:, 1], coords[:, 2]], cf.values, atol=1e-10
        )

    def test_constant_field_exactly_reconstructed(self, pattern32):
        """Trilinear interpolation reproduces constants exactly."""
        const = np.full((32, 32, 32), 3.7)
        cf = CompressedField.from_dense(const, pattern32)
        rec = reconstruct_dense(cf)
        np.testing.assert_allclose(rec, const, atol=1e-9)

    def test_linear_field_exactly_reconstructed(self, pattern32):
        """Trilinear interpolation reproduces (tri)linear ramps exactly."""
        x = np.arange(32, dtype=float)
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        field = 2.0 * X - 0.5 * Y + 0.25 * Z + 1.0
        cf = CompressedField.from_dense(field, pattern32)
        rec = reconstruct_dense(cf)
        np.testing.assert_allclose(rec, field, atol=1e-8)

    def test_smooth_field_small_error(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        rec = reconstruct_dense(cf)
        err = np.linalg.norm(rec - smooth_field) / np.linalg.norm(smooth_field)
        assert err < 0.05

    def test_nearest_method(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        rec = reconstruct_dense(cf, method="nearest")
        err = np.linalg.norm(rec - smooth_field) / np.linalg.norm(smooth_field)
        assert err < 0.25  # coarser than linear, still bounded

    def test_nearest_worse_than_linear(self, smooth_field):
        pat = build_flat_pattern(32, 8, (12, 12, 12), r=4)
        cf = CompressedField.from_dense(smooth_field, pat)
        e_lin = np.linalg.norm(reconstruct_dense(cf) - smooth_field)
        e_near = np.linalg.norm(reconstruct_dense(cf, method="nearest") - smooth_field)
        assert e_lin < e_near

    def test_bad_method(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        with pytest.raises(ConfigurationError):
            reconstruct_dense(cf, method="cubic")

    def test_box_consistent_with_dense(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        full = reconstruct_dense(cf)
        box = reconstruct_box(cf, (5, 10, 15), (8, 6, 4))
        np.testing.assert_allclose(box, full[5:13, 10:16, 15:19], atol=1e-12)

    def test_box_out_of_range(self, pattern32, smooth_field):
        cf = CompressedField.from_dense(smooth_field, pattern32)
        with pytest.raises(ShapeError):
            reconstruct_box(cf, (30, 0, 0), (8, 4, 4))

    def test_adaptive_pattern_reconstruction(self, smooth_field):
        pat = build_adaptive_pattern(
            32, 8, (12, 12, 12), r_near=2, r_mid=4, r_far=8, min_cell=2
        )
        cf = CompressedField.from_dense(smooth_field, pat)
        rec = reconstruct_dense(cf)
        err = np.linalg.norm(rec - smooth_field) / np.linalg.norm(smooth_field)
        assert err < 0.05

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_error_decreases_with_density_property(self, seed):
        """Finer exterior rates never reconstruct worse (smooth fields)."""
        r = np.random.default_rng(seed)
        n = 16
        x = np.arange(n) - (n - 1) / 2
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        width = 4.0 + 4.0 * r.random()
        field = np.exp(-(X**2 + Y**2 + Z**2) / (2 * width**2))
        errs = []
        for rate in (2, 4):
            pat = build_flat_pattern(n, 4, (4, 4, 4), r=rate)
            cf = CompressedField.from_dense(field, pat)
            rec = reconstruct_dense(cf)
            errs.append(float(np.linalg.norm(rec - field)))
        assert errs[0] <= errs[1] + 1e-9
