"""Tests for PrunedPlan/PlanCache, PadScratch, and the Hermitian
(half-spectrum) pruned transform building blocks."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.fft.backend import backend_rfft, get_backend
from repro.fft.pruned import (
    PadScratch,
    hermitian_partial_idft,
    hermitian_partial_idft_matrix,
    partial_idft,
    partial_idft_matrix,
    pruned_input_fft,
    pruned_input_rfft,
    rslab_from_subcube,
    slab_from_subcube,
)
from repro.fft.pruned_plan import PlanCache, PrunedPlan, get_plan
from repro.fft.real import half_length, hermitian_weights


class TestHermitianWeights:
    def test_even_n(self):
        w = hermitian_weights(8)
        assert w.shape == (5,)
        assert w[0] == 1.0 and w[-1] == 1.0
        assert np.all(w[1:-1] == 2.0)

    def test_odd_n(self):
        w = hermitian_weights(7)
        assert w.shape == (4,)
        assert w[0] == 1.0
        assert np.all(w[1:] == 2.0)

    def test_half_length(self):
        assert half_length(8) == 5
        assert half_length(7) == 4


class TestPadScratch:
    def test_matches_fresh_buffer(self, rng):
        scratch = PadScratch()
        x = rng.standard_normal((4, 6))
        buf = scratch.padded(x, 3, 16, axis=1)
        expect = np.zeros((4, 16))
        expect[:, 3:9] = x
        np.testing.assert_array_equal(buf, expect)

    def test_stale_band_cleared_on_new_placement(self, rng):
        """Reusing the buffer with a different (offset, extent) must not
        leak the previously written band."""
        scratch = PadScratch()
        x = rng.standard_normal((4, 6))
        scratch.padded(x, 0, 16, axis=1)
        y = rng.standard_normal((4, 6))
        buf = scratch.padded(y, 9, 16, axis=1)
        expect = np.zeros((4, 16))
        expect[:, 9:15] = y
        np.testing.assert_array_equal(buf, expect)

    def test_same_placement_reuses_without_clear(self, rng):
        scratch = PadScratch()
        x = rng.standard_normal((3, 5))
        buf1 = scratch.padded(x, 2, 12, axis=1)
        y = rng.standard_normal((3, 5))
        buf2 = scratch.padded(y, 2, 12, axis=1)
        assert buf1 is buf2
        expect = np.zeros((3, 12))
        expect[:, 2:7] = y
        np.testing.assert_array_equal(buf2, expect)

    def test_separate_slots_per_dtype(self, rng):
        scratch = PadScratch()
        xr = rng.standard_normal((2, 3))
        xc = xr + 1j * xr
        bufr = scratch.padded(xr, 0, 8, axis=1)
        bufc = scratch.padded(xc, 0, 8, axis=1)
        assert bufr.dtype == np.float64
        assert bufc.dtype == np.complex128


class TestPrunedInputRfft:
    def test_matches_rfft_of_padded(self, rng):
        x = rng.standard_normal((5, 4))
        n, offset = 16, 6
        padded = np.zeros((5, n))
        padded[:, offset : offset + 4] = x
        expect = np.fft.rfft(padded, axis=1)
        got = pruned_input_rfft(x, offset, n, axis=1)
        np.testing.assert_allclose(got, expect, atol=1e-12)

    def test_scratch_path_matches(self, rng):
        x = rng.standard_normal((5, 4))
        base = pruned_input_rfft(x, 2, 16, axis=1)
        scratch = PadScratch()
        got = pruned_input_rfft(x, 2, 16, axis=1, scratch=scratch)
        np.testing.assert_array_equal(got, base)

    def test_rejects_complex_input(self):
        with pytest.raises(ShapeError):
            pruned_input_rfft(np.zeros(4, dtype=np.complex128), 0, 8, axis=0)

    def test_fft_scratch_path_matches(self, rng):
        x = rng.standard_normal((5, 4))
        base = pruned_input_fft(x, 2, 16, axis=1)
        scratch = PadScratch()
        got = pruned_input_fft(x, 2, 16, axis=1, scratch=scratch)
        np.testing.assert_array_equal(got, base)

    def test_backend_rfft_fallback(self, rng):
        """A backend without a native rfft still computes the half spectrum."""
        be = dataclasses.replace(get_backend("numpy"), rfft=None)
        x = rng.standard_normal((3, 8))
        np.testing.assert_allclose(
            backend_rfft(be, x, axis=1), np.fft.rfft(x, axis=1), atol=1e-12
        )


class TestHalfSlab:
    def test_rslab_is_prefix_of_full_slab(self, rng):
        n, k = 16, 4
        sub = rng.standard_normal((k, k, k))
        full = slab_from_subcube(sub, (4, 8, 0), n)
        half = rslab_from_subcube(sub, (4, 8, 0), n)
        h = half_length(n)
        assert half.shape == (h, n, k)
        np.testing.assert_allclose(half, full[:h], atol=1e-12)

    def test_full_slab_recoverable_by_hermitian_symmetry(self, rng):
        n, k = 16, 4
        sub = rng.standard_normal((k, k, k))
        full = slab_from_subcube(sub, (0, 4, 0), n)
        half = rslab_from_subcube(sub, (0, 4, 0), n)
        fx, fy = 3, 5
        np.testing.assert_allclose(
            full[-fx, -fy], np.conj(half[fx, fy]), atol=1e-12
        )


class TestHermitianPartialIdft:
    def test_matches_full_partial_idft(self, rng):
        n = 16
        signal = rng.standard_normal((6, n))
        spec = np.fft.fft(signal, axis=1)
        half = spec[:, : half_length(n)]
        coords = np.array([0, 3, 7, 12, 15])
        full_out = partial_idft(spec, coords, axis=1)
        herm_out = hermitian_partial_idft(half, coords, n, axis=1)
        assert herm_out.dtype == np.float64
        np.testing.assert_allclose(herm_out, np.real(full_out), atol=1e-12)

    def test_odd_n(self, rng):
        n = 15
        signal = rng.standard_normal((4, n))
        spec = np.fft.fft(signal, axis=1)
        half = spec[:, : half_length(n)]
        coords = np.arange(n)
        out = hermitian_partial_idft(half, coords, n, axis=1)
        np.testing.assert_allclose(out, signal, atol=1e-12)

    def test_wrong_half_length_rejected(self):
        with pytest.raises(ShapeError):
            hermitian_partial_idft(np.zeros((2, 4), dtype=complex), [0], 16)

    def test_matrix_is_weighted_half(self):
        n, coords = 8, [0, 2, 5]
        full = partial_idft_matrix(n, coords)
        herm = hermitian_partial_idft_matrix(n, coords)
        h = half_length(n)
        np.testing.assert_allclose(
            herm, full[:, :h] * hermitian_weights(n)[None, :], atol=1e-15
        )

    def test_coords_out_of_range_rejected(self):
        with pytest.raises(ShapeError):
            partial_idft_matrix(8, [0, 8])


class TestPrunedPlan:
    def test_plan_stages_match_direct_functions(self, rng):
        n, k = 16, 4
        coords = np.array([0, 2, 5, 9, 14])
        plan = PrunedPlan(n, coords, coords, coords)
        sub = rng.standard_normal((k, k, k))
        slab = plan.forward_slab(sub, (4, 0, 8))
        np.testing.assert_array_equal(slab, slab_from_subcube(sub, (4, 0, 8), n))
        flat = slab.reshape(n * n, k)
        spec = plan.zstage(flat[:32], 8)
        np.testing.assert_allclose(
            plan.idft_z(spec), partial_idft(spec, coords, axis=1), atol=1e-12
        )

    def test_hermitian_plan_shapes(self):
        n = 16
        coords = np.arange(n)
        plan = PrunedPlan(n, coords, coords, coords, hermitian=True)
        assert plan.slab_rows == half_length(n)
        assert plan.num_pencils == half_length(n) * n
        assert plan.mat_x.shape == (n, half_length(n))

    def test_pencil_index_hoisting(self):
        n = 8
        plan = PrunedPlan(n, np.arange(n), np.arange(n), np.arange(n))
        ix, iy = np.divmod(np.arange(n * n), n)
        np.testing.assert_array_equal(plan.pencil_ix, ix)
        np.testing.assert_array_equal(plan.pencil_iy, iy)


class TestPlanCache:
    def test_congruent_patterns_share_plan(self):
        cache = PlanCache()
        c = np.array([0, 3, 7])
        p1 = cache.get(16, c, c, c)
        p2 = cache.get(16, c.copy(), c.copy(), c.copy())
        assert p1 is p2
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_distinct_configurations_get_distinct_plans(self):
        cache = PlanCache()
        c = np.array([0, 3, 7])
        p1 = cache.get(16, c, c, c)
        p2 = cache.get(16, c, c, c, hermitian=True)
        p3 = cache.get(16, c, c, np.array([0, 1, 2]))
        assert p1 is not p2 and p1 is not p3
        assert cache.misses == 3

    def test_eviction_bounds_size(self):
        cache = PlanCache(max_plans=2)
        for m in range(4):
            coords = np.arange(m + 1)
            cache.get(16, coords, coords, coords)
        assert len(cache) == 2

    def test_plans_share_scratch(self):
        cache = PlanCache()
        c = np.array([0, 1])
        p1 = cache.get(16, c, c, c)
        p2 = cache.get(16, c, c, c, hermitian=True)
        assert p1.scratch is p2.scratch is cache.scratch

    def test_module_level_get_plan(self):
        c = np.array([0, 5])
        assert get_plan(16, c, c, c) is get_plan(16, c, c, c)


class TestPlanCacheThreadSafety:
    def test_concurrent_congruent_gets_build_once(self):
        # The serving layer submits congruent work from scheduler threads:
        # hammer one cache from many threads and require exactly one build
        # per distinct configuration, one shared plan object, and
        # consistent hit/miss accounting.
        import threading

        cache = PlanCache()
        coord_sets = [np.arange(m + 2) for m in range(4)]
        seen = [[] for _ in range(8)]
        barrier = threading.Barrier(8)

        def worker(slot):
            barrier.wait()  # maximize interleaving on the first gets
            for _ in range(50):
                for coords in coord_sets:
                    seen[slot].append(cache.get(16, coords, coords, coords))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(cache) == len(coord_sets)
        assert cache.misses == len(coord_sets)
        assert cache.hits == 8 * 50 * len(coord_sets) - cache.misses
        # every thread saw the same plan object per configuration
        canonical = [cache.get(16, c, c, c) for c in coord_sets]
        for slot in seen:
            for i, plan in enumerate(slot):
                assert plan is canonical[i % len(coord_sets)]
