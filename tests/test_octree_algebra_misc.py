"""Tests for compressed-field algebra, the kernel study, and the report
generator."""

import numpy as np
import pytest

from repro.analysis.generate_report import generate_report, write_report
from repro.analysis.kernel_study import kernel_family_study
from repro.errors import ConfigurationError
from repro.octree.algebra import add, linear_combination, same_pattern, scale
from repro.octree.compress import CompressedField
from repro.octree.interpolate import reconstruct_dense
from repro.octree.sampling import build_flat_pattern


@pytest.fixture
def pattern():
    return build_flat_pattern(16, 4, (4, 4, 4), r=2)


@pytest.fixture
def fields(pattern, rng):
    a = CompressedField.from_dense(rng.standard_normal((16, 16, 16)), pattern)
    b = CompressedField.from_dense(rng.standard_normal((16, 16, 16)), pattern)
    return a, b


class TestCompressedAlgebra:
    def test_add_exact(self, fields):
        a, b = fields
        s = add(a, b)
        np.testing.assert_allclose(s.values, a.values + b.values)

    def test_add_commutes_with_reconstruction(self, fields):
        """Linearity: reconstruct(a + b) == reconstruct(a) + reconstruct(b)."""
        a, b = fields
        lhs = reconstruct_dense(add(a, b))
        rhs = reconstruct_dense(a) + reconstruct_dense(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    def test_scale(self, fields):
        a, _ = fields
        np.testing.assert_allclose(scale(a, -2.5).values, -2.5 * a.values)

    def test_linear_combination(self, fields):
        a, b = fields
        combo = linear_combination([a, b], [3.0, -1.0])
        np.testing.assert_allclose(combo.values, 3 * a.values - b.values)

    def test_same_pattern_detects_mismatch(self, fields, rng):
        a, _ = fields
        other = build_flat_pattern(16, 4, (8, 8, 8), r=2)
        c = CompressedField.from_dense(rng.standard_normal((16, 16, 16)), other)
        assert not same_pattern(a, c)
        with pytest.raises(ConfigurationError):
            add(a, c)

    def test_identical_pattern_object(self, fields):
        a, b = fields
        assert same_pattern(a, b)

    def test_mismatched_lengths(self, fields):
        a, b = fields
        with pytest.raises(ConfigurationError):
            linear_combination([a, b], [1.0])

    def test_empty_combination(self):
        with pytest.raises(ConfigurationError):
            linear_combination([], [])


class TestKernelStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return kernel_family_study(n=16, k=4)

    def test_all_families_present(self, rows):
        families = {r.family for r in rows}
        assert families == {
            "gaussian-sharp", "gaussian-smooth", "yukawa", "poisson"
        }

    def test_shared_budget(self, rows):
        ratios = {round(r.compression_ratio, 6) for r in rows}
        assert len(ratios) == 1  # same pattern for every kernel

    def test_support_orders_by_decay(self, rows):
        by = {r.family: r for r in rows}
        assert by["gaussian-sharp"].support_radius < by["poisson"].support_radius

    def test_errors_finite_and_bounded(self, rows):
        assert all(0 <= r.l2_error < 1 for r in rows)


class TestReportGenerator:
    @pytest.fixture(scope="class")
    def report_text(self):
        return generate_report(fast=True)

    def test_contains_all_sections(self, report_text):
        for section in (
            "Table 1", "Table 2", "Table 3", "Table 4",
            "Figure 1", "Figure 3", "Eq 1 vs Eq 6", "MASSIF",
        ):
            assert section in report_text

    def test_paper_values_present(self, report_text):
        assert "N=8192" in report_text  # Table 1 rows
        assert "0.4945" in report_text or "0.494" in report_text  # §2.1

    def test_write_report(self, report_text, tmp_path):
        path = tmp_path / "report.md"
        write_report(str(path), fast=True)
        assert path.read_text().startswith("# Reproduction report")
