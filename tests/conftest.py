"""Shared fixtures for the repro test suite.

Two suite-wide behaviours live here besides the data fixtures:

- **Singleton isolation** — the process-wide default
  :class:`~repro.fft.pruned_plan.PlanCache` (plans, shared pad scratch,
  and hit/miss metrics) is reset around every test by an autouse fixture,
  so no test observes state warmed by another.  ``test_isolation.py``
  regression-tests this.
- **Seed-randomized ordering** — setting ``REPRO_TEST_SHUFFLE_SEED=<int>``
  shuffles test order deterministically (no plugin needed), which is how
  CI's tier-2 job surfaces hidden ordering assumptions.  The seed is
  echoed in the run header and again after a failing run so any failure
  is reproducible with the same seed.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.fft.pruned_plan import reset_default_cache
from repro.kernels.gaussian import GaussianKernel

_SHUFFLE_ENV = "REPRO_TEST_SHUFFLE_SEED"


def pytest_collection_modifyitems(config, items):
    seed = os.environ.get(_SHUFFLE_ENV)
    if not seed:
        return
    random.Random(int(seed)).shuffle(items)


def pytest_report_header(config):
    seed = os.environ.get(_SHUFFLE_ENV)
    if seed:
        return f"repro: test order shuffled ({_SHUFFLE_ENV}={seed})"
    return None


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    seed = os.environ.get(_SHUFFLE_ENV)
    if seed and exitstatus != 0:
        terminalreporter.write_line(
            f"[repro] shuffled run failed — reproduce the order with "
            f"{_SHUFFLE_ENV}={seed}"
        )


@pytest.fixture(autouse=True)
def _cold_plan_cache():
    """Every test starts and ends with a cold default plan cache."""
    reset_default_cache()
    yield
    reset_default_cache()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_kernel() -> GaussianKernel:
    """A 16^3 Gaussian kernel for fast convolution tests."""
    return GaussianKernel(n=16, sigma=1.5)


@pytest.fixture
def small_spectrum(small_kernel) -> np.ndarray:
    return small_kernel.spectrum()
