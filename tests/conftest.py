"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.gaussian import GaussianKernel


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_kernel() -> GaussianKernel:
    """A 16^3 Gaussian kernel for fast convolution tests."""
    return GaussianKernel(n=16, sigma=1.5)


@pytest.fixture
def small_spectrum(small_kernel) -> np.ndarray:
    return small_kernel.spectrum()
