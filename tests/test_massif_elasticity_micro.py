"""Tests for elasticity tensors, Voigt mapping, and microstructures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.kernels.green_massif import LameParameters
from repro.massif.elasticity import (
    StiffnessField,
    cubic_stiffness,
    isotropic_stiffness,
    tensor_from_voigt,
    voigt_from_tensor,
)
from repro.massif.microstructure import (
    layered_microstructure,
    random_spheres,
    sphere_inclusion,
    volume_fractions,
    voronoi_polycrystal,
)


class TestStiffnessTensors:
    def test_isotropic_symmetries(self):
        c = isotropic_stiffness(LameParameters(lam=1.2, mu=0.7))
        np.testing.assert_allclose(c, c.transpose(1, 0, 2, 3))
        np.testing.assert_allclose(c, c.transpose(0, 1, 3, 2))
        np.testing.assert_allclose(c, c.transpose(2, 3, 0, 1))

    def test_isotropic_components(self):
        lam, mu = 1.2, 0.7
        c = isotropic_stiffness(LameParameters(lam=lam, mu=mu))
        assert c[0, 0, 0, 0] == pytest.approx(lam + 2 * mu)
        assert c[0, 0, 1, 1] == pytest.approx(lam)
        assert c[0, 1, 0, 1] == pytest.approx(mu)

    def test_isotropic_is_cubic_special_case(self):
        lam, mu = 1.0, 0.5
        iso = isotropic_stiffness(LameParameters(lam=lam, mu=mu))
        cub = cubic_stiffness(c11=lam + 2 * mu, c12=lam, c44=mu)
        np.testing.assert_allclose(iso, cub, atol=1e-12)

    def test_cubic_stability_enforced(self):
        with pytest.raises(ConfigurationError):
            cubic_stiffness(c11=1.0, c12=2.0, c44=0.5)

    def test_isotropic_hydrostatic_response(self):
        lame = LameParameters(lam=2.0, mu=1.0)
        c = isotropic_stiffness(lame)
        eps = np.eye(3)
        sigma = np.einsum("ijkl,kl->ij", c, eps)
        bulk = lame.lam + 2 * lame.mu / 3
        np.testing.assert_allclose(sigma, 3 * bulk * np.eye(3), atol=1e-12)


class TestVoigt:
    def test_roundtrip_isotropic(self):
        c = isotropic_stiffness(LameParameters(lam=1.0, mu=0.5))
        np.testing.assert_allclose(tensor_from_voigt(voigt_from_tensor(c)), c)

    def test_voigt_shape(self):
        c = isotropic_stiffness(LameParameters(lam=1.0, mu=0.5))
        assert voigt_from_tensor(c).shape == (6, 6)

    def test_voigt_symmetric_for_symmetric_tensor(self):
        c = cubic_stiffness(3.0, 1.0, 0.8)
        m = voigt_from_tensor(c)
        np.testing.assert_allclose(m, m.T)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, seed):
        r = np.random.default_rng(seed)
        m = r.standard_normal((6, 6))
        m = 0.5 * (m + m.T)
        back = voigt_from_tensor(tensor_from_voigt(m))
        np.testing.assert_allclose(back, m, atol=1e-12)

    def test_bad_shapes(self):
        with pytest.raises(ShapeError):
            voigt_from_tensor(np.zeros((3, 3)))
        with pytest.raises(ShapeError):
            tensor_from_voigt(np.zeros((3, 3)))


class TestStiffnessField:
    def _two_phase(self, n=8):
        c0 = isotropic_stiffness(LameParameters(lam=1.0, mu=0.5))
        c1 = isotropic_stiffness(LameParameters(lam=2.0, mu=1.0))
        phase = sphere_inclusion(n, radius=n * 0.3)
        return StiffnessField(phase, [c0, c1]), c0, c1, phase

    def test_apply_respects_phases(self, rng):
        sf, c0, c1, phase = self._two_phase()
        n = sf.n
        eps = rng.standard_normal((3, 3, n, n, n))
        sigma = sf.apply(eps)
        # check a voxel of each phase against direct contraction
        for target_phase, c in [(0, c0), (1, c1)]:
            loc = tuple(np.argwhere(phase == target_phase)[0])
            expected = np.einsum("ijkl,kl->ij", c, eps[(...,) + loc][:, :])
            np.testing.assert_allclose(sigma[(...,) + loc][:, :], expected, atol=1e-12)

    def test_reference_lame_midpoint(self):
        sf, _c0, _c1, _ = self._two_phase()
        ref = sf.reference_lame()
        assert ref.mu == pytest.approx(0.75)
        assert ref.lam == pytest.approx(1.5)

    def test_mean_tensor_weights(self):
        sf, c0, c1, phase = self._two_phase()
        frac = phase.mean()
        mean = sf.mean_tensor()
        np.testing.assert_allclose(mean, (1 - frac) * c0 + frac * c1, atol=1e-12)

    def test_phase_label_out_of_range(self):
        c0 = isotropic_stiffness(LameParameters(lam=1.0, mu=0.5))
        with pytest.raises(ConfigurationError):
            StiffnessField(np.full((4, 4, 4), 3, dtype=np.int64), [c0])

    def test_float_phase_map_rejected(self):
        c0 = isotropic_stiffness(LameParameters(lam=1.0, mu=0.5))
        with pytest.raises(ConfigurationError):
            StiffnessField(np.zeros((4, 4, 4)), [c0])

    def test_apply_shape_check(self):
        sf, *_ = self._two_phase()
        with pytest.raises(ShapeError):
            sf.apply(np.zeros((3, 3, 4, 4, 4)))


class TestMicrostructures:
    def test_sphere_volume_fraction(self):
        phase = sphere_inclusion(32, radius=8)
        frac = phase.mean()
        expected = (4 / 3) * np.pi * 8**3 / 32**3
        assert frac == pytest.approx(expected, rel=0.1)

    def test_sphere_periodic_wrap(self):
        phase = sphere_inclusion(16, center=(0, 0, 0), radius=3)
        assert phase[0, 0, 0] == 1
        assert phase[15, 0, 0] == 1  # wraps around

    def test_random_spheres_deterministic(self):
        a = random_spheres(16, 3, rng=np.random.default_rng(1))
        b = random_spheres(16, 3, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_layered_alternates(self):
        phase = layered_microstructure(8, num_layers=4, axis=0)
        np.testing.assert_array_equal(phase[0], 0)
        np.testing.assert_array_equal(phase[2], 1)
        assert phase.mean() == pytest.approx(0.5)

    def test_layered_axis(self):
        phase = layered_microstructure(8, 4, axis=2)
        assert (phase[:, :, 0] == phase[0, 0, 0]).all()

    def test_layered_divisibility(self):
        with pytest.raises(ConfigurationError):
            layered_microstructure(8, 3)

    def test_voronoi_labels_all_grains(self):
        labels = voronoi_polycrystal(16, 5, rng=np.random.default_rng(2))
        assert set(np.unique(labels)) <= set(range(5))
        assert len(np.unique(labels)) >= 2

    def test_volume_fractions_sum_to_one(self):
        labels = voronoi_polycrystal(8, 4, rng=np.random.default_rng(3))
        fracs = volume_fractions(labels, 4)
        assert fracs.sum() == pytest.approx(1.0)
