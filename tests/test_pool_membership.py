"""Elastic membership: the generation-numbered roster + liveness hooks.

Every shape change (admit/evict/replace) must bump the generation so
stale work can be fenced, rank assignment must be deterministic from the
card set alone, and the heartbeat monitor must track members as they
come and go — all on a manual clock.
"""

import pytest

from repro.dist.heartbeat import HeartbeatMonitor
from repro.errors import PoolError, RankFailure, StaleGenerationError
from repro.pool.membership import Roster
from repro.pool.rendezvous import AgentCard
from repro.serve.clock import ManualClock


def _card(agent_id):
    return AgentCard(agent_id=agent_id, host="127.0.0.1", port=4242, pid=1)


class TestRosterFormation:
    def test_ranks_assigned_in_agent_id_order(self):
        roster = Roster.form([_card("ccc"), _card("aaa"), _card("bbb")])
        assert roster.generation == 1
        assert roster.size == 3
        assert roster.agent_ids() == ["aaa", "bbb", "ccc"]
        assert roster.ranks() == [0, 1, 2]
        assert roster.card(2).agent_id == "ccc"

    def test_every_observer_forms_the_same_roster(self):
        cards = [_card("xx"), _card("aa"), _card("mm")]
        a = Roster.form(cards)
        b = Roster.form(list(reversed(cards)))
        assert a.agent_ids() == b.agent_ids()

    def test_zero_agents_is_loud(self):
        with pytest.raises(PoolError, match="zero agents"):
            Roster.form([])

    def test_duplicate_agent_ids_are_loud(self):
        with pytest.raises(PoolError, match="duplicate agent ids"):
            Roster.form([_card("aaa"), _card("aaa")])

    def test_rank_of_and_empty_slot(self):
        roster = Roster.form([_card("aaa")])
        assert roster.rank_of("aaa") == 0
        assert roster.rank_of("ghost") is None
        with pytest.raises(PoolError, match="no member holds rank 5"):
            roster.card(5)


class TestRosterMutation:
    def test_admit_takes_lowest_free_rank_and_bumps_generation(self):
        roster = Roster.form([_card("aaa"), _card("bbb")])
        roster.evict(0)
        generation = roster.generation
        member = roster.admit(_card("zzz"))
        assert member.rank == 0  # lowest free slot, not size
        assert roster.generation == generation + 1

    def test_admit_rejects_existing_member(self):
        roster = Roster.form([_card("aaa")])
        with pytest.raises(PoolError, match="already a member"):
            roster.admit(_card("aaa"))

    def test_evict_returns_card_and_bumps_generation(self):
        roster = Roster.form([_card("aaa"), _card("bbb")])
        card = roster.evict(1)
        assert card.agent_id == "bbb"
        assert roster.generation == 2
        assert roster.ranks() == [0]

    def test_replace_inherits_the_dead_rank(self):
        roster = Roster.form([_card("aaa"), _card("bbb"), _card("ccc")])
        member = roster.replace(1, _card("new"))
        assert member.rank == 1
        assert roster.generation == 2
        assert roster.agent_ids() == ["aaa", "new", "ccc"]

    def test_replace_guards_both_directions(self):
        roster = Roster.form([_card("aaa"), _card("bbb")])
        with pytest.raises(PoolError, match="already a member"):
            roster.replace(0, _card("bbb"))
        with pytest.raises(PoolError, match="no member holds rank 9"):
            roster.replace(9, _card("new"))


class TestGenerationFencing:
    def test_current_generation_passes(self):
        roster = Roster.form([_card("aaa")])
        roster.fence(1)  # no raise

    def test_stale_generation_is_rejected_with_context(self):
        roster = Roster.form([_card("aaa"), _card("bbb")])
        roster.evict(1)
        with pytest.raises(StaleGenerationError) as excinfo:
            roster.fence(1)
        assert excinfo.value.seen == 1
        assert excinfo.value.current == 2

    def test_future_generation_is_equally_fatal(self):
        roster = Roster.form([_card("aaa")])
        with pytest.raises(StaleGenerationError):
            roster.fence(99)

    def test_every_mutation_invalidates_old_stamps(self):
        roster = Roster.form([_card("aaa"), _card("bbb")])
        stamp = roster.generation
        roster.evict(1)
        roster.admit(_card("ccc"))
        roster.replace(1, _card("ddd"))
        assert roster.generation == stamp + 3
        with pytest.raises(StaleGenerationError):
            roster.fence(stamp)


class TestMonitorMembershipHooks:
    """watch/unwatch are how the pool tracks elastic members' liveness."""

    def test_watch_starts_counting_from_admission(self):
        clock = ManualClock()
        monitor = HeartbeatMonitor([], timeout_s=1.0, clock=clock.now)
        assert monitor.watched() == []
        clock.advance(10.0)  # long pre-admission silence is irrelevant
        monitor.watch(3)
        assert monitor.watched() == [3]
        assert monitor.overdue() == []
        clock.advance(1.5)
        assert monitor.overdue() == [3]
        with pytest.raises(RankFailure, match=r"\[3\]"):
            monitor.check()

    def test_record_resets_silence(self):
        clock = ManualClock()
        monitor = HeartbeatMonitor([], timeout_s=1.0, clock=clock.now)
        monitor.watch(0)
        clock.advance(0.9)
        monitor.record(0)
        clock.advance(0.9)
        assert monitor.overdue() == []

    def test_unwatch_silences_the_evicted(self):
        clock = ManualClock()
        monitor = HeartbeatMonitor([], timeout_s=1.0, clock=clock.now)
        monitor.watch(0)
        monitor.watch(1)
        clock.advance(5.0)
        monitor.unwatch(0)
        monitor.unwatch(0)  # unknown/already-gone is fine
        assert monitor.overdue() == [1]
        assert monitor.watched() == [1]

    def test_rewatch_resets_a_replaced_rank(self):
        clock = ManualClock()
        monitor = HeartbeatMonitor([], timeout_s=1.0, clock=clock.now)
        monitor.watch(2)
        clock.advance(5.0)
        assert monitor.overdue() == [2]
        monitor.watch(2)  # replacement seated at the same rank
        assert monitor.overdue() == []
