"""Fixture tests for the repro lint framework: every rule fires and stays quiet.

Each rule gets a positive fixture (deliberate violations under
``tests/lint_fixtures/``) proving it fires with the right count, and a
negative fixture proving it stays silent on compliant code.  Engine
behavior — suppression comments, SUP001 unused-suppression warnings,
JSON schema, discovery exclusions, CLI exit codes — is covered here too,
and the final gate test asserts the real tree lints clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    EXCLUDED_DIRS,
    JSON_SCHEMA_VERSION,
    LintEngine,
    discover_files,
    run_lint,
)
from repro.analysis.rules import default_rules, rule_by_id
from repro.cli import main
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO = Path(__file__).parent.parent


def lint_with(rule_id, *relpaths):
    """Run one rule over fixture files; returns (engine, findings)."""
    engine = LintEngine([rule_by_id(rule_id)])
    findings = engine.run([FIXTURES / rel for rel in relpaths])
    return engine, findings


class TestLockOrderRule:
    def test_fires_on_abba(self):
        _, findings = lint_with("LCK001", "lck001/bad_order.py")
        assert len(findings) == 2  # both edges of the cycle are flagged
        assert all(f.rule_id == "LCK001" for f in findings)
        assert "cycle" in findings[0].message

    def test_silent_on_consistent_order(self):
        _, findings = lint_with("LCK001", "lck001/good_order.py")
        assert findings == []

    def test_cycle_across_files(self):
        # Class-qualified lock identities unify across files: half A takes
        # queue->state, half B takes state->queue on the same class.
        for half in ("lck001/cross_a.py", "lck001/cross_b.py"):
            _, alone = lint_with("LCK001", half)
            assert alone == []  # either half alone is a valid order
        _, findings = lint_with(
            "LCK001", "lck001/cross_a.py", "lck001/cross_b.py"
        )
        assert len(findings) == 2
        assert {Path(f.path).name for f in findings} == {
            "cross_a.py", "cross_b.py",
        }


class TestLockHeldBlockingRule:
    def test_fires_on_sleep_and_recv(self):
        _, findings = lint_with("LCK002", "lck002/bad_blocking.py")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "time.sleep()" in messages
        assert ".recv()" in messages

    def test_silent_outside_lock_and_for_io_locks(self):
        _, findings = lint_with("LCK002", "lck002/good_blocking.py")
        assert findings == []


class TestBroadExceptRule:
    def test_fires_on_broad_and_bare(self):
        _, findings = lint_with("EXC001", "exc001/dist/bad_except.py")
        assert len(findings) == 2
        kinds = {f.message.split(" on ")[0] for f in findings}
        assert kinds == {"broad except", "bare except"}

    def test_silent_on_narrow_wrapping_or_tagged(self):
        _, findings = lint_with("EXC001", "exc001/dist/good_except.py")
        assert findings == []

    def test_out_of_scope_outside_dist(self):
        # The same violations in a non-dist path are out of scope.
        _, findings = lint_with("EXC001", "lck002/bad_blocking.py")
        assert findings == []


class TestInjectableClockRule:
    def test_fires_on_module_and_bare_calls(self):
        _, findings = lint_with("CLK001", "clk001/serve/bad_clock.py")
        assert len(findings) == 3
        assert {"time.monotonic", "time.sleep", "monotonic"} == {
            f.message.split("(")[0].split()[1] for f in findings
        }

    def test_silent_on_injected_clock(self):
        _, findings = lint_with("CLK001", "clk001/serve/good_clock.py")
        assert findings == []

    def test_fires_on_xpr_tree(self):
        _, findings = lint_with("CLK001", "clk001/xpr/bad_clock.py")
        assert len(findings) == 3
        assert {"time.perf_counter", "perf_counter"} == {
            f.message.split("(")[0].split()[1] for f in findings
        }

    def test_silent_on_clock_injected_xpr(self):
        _, findings = lint_with("CLK001", "clk001/xpr/good_clock.py")
        assert findings == []

    def test_fires_on_pool_tree(self):
        _, findings = lint_with("CLK001", "clk001/pool/bad_clock.py")
        assert len(findings) == 3
        assert {"time.monotonic", "sleep"} == {
            f.message.split("(")[0].split()[1] for f in findings
        }

    def test_silent_on_clock_injected_pool(self):
        _, findings = lint_with("CLK001", "clk001/pool/good_clock.py")
        assert findings == []

    def test_out_of_scope_outside_clocked_trees(self):
        # The same time.* calls outside serve/, xpr/, and pool/ are not
        # flagged.
        _, findings = lint_with("CLK001", "lck002/bad_blocking.py")
        assert findings == []


class TestWireConstantRule:
    def test_fires_on_duplicated_literals(self):
        _, findings = lint_with(
            "WIRE001", "wire001/wire.py", "wire001/bad_client.py"
        )
        assert len(findings) == 3  # bytes magic, format string, int magic
        assert all("bad_client.py" in f.path for f in findings)

    def test_silent_on_imports_and_unrelated_literals(self):
        _, findings = lint_with(
            "WIRE001", "wire001/wire.py", "wire001/good_client.py"
        )
        assert findings == []

    def test_builtin_seed_catches_frame_magic_anywhere(self, tmp_path):
        rogue = tmp_path / "rogue.py"
        rogue.write_text('HEADER = b"LCDF"\n')
        engine = LintEngine([rule_by_id("WIRE001")])
        findings = engine.run([rogue])
        assert len(findings) == 1
        assert "FRAME_MAGIC" in findings[0].message


class TestWireCopyRule:
    def test_fires_on_bytes_and_join_under_dist(self):
        _, findings = lint_with("WIRE002", "wire002/dist/bad_copies.py")
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "bytes(...)" in messages
        assert "measured_join" in messages
        assert "Segments" in messages

    def test_silent_on_allocations_and_audited_joins(self):
        _, findings = lint_with("WIRE002", "wire002/dist/good_copies.py")
        assert findings == []

    def test_serialize_basename_is_in_scope(self):
        _, findings = lint_with("WIRE002", "wire002/serialize.py")
        assert len(findings) == 1

    def test_out_of_scope_outside_dist(self):
        _, findings = lint_with("WIRE002", "wire002/outside.py")
        assert findings == []

    def test_disable_comment_suppresses(self, tmp_path):
        mod = tmp_path / "dist"
        mod.mkdir()
        cold = mod / "cold.py"
        cold.write_text(
            "def snapshot(view):\n"
            "    return bytes(view)  # repro-lint: disable=WIRE002\n"
        )
        engine = LintEngine([rule_by_id("WIRE002")])
        assert engine.run([cold]) == []


class TestExportHygieneRule:
    def test_fires_on_unpledged_and_ghost_names(self):
        _, findings = lint_with("API001", "api001/bad_exports.py")
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 3
        assert "unpledged_public" in messages
        assert "UnpledgedThing" in messages
        assert "ghost_entry" in messages

    def test_silent_on_complete_all(self):
        _, findings = lint_with("API001", "api001/good_exports.py")
        assert findings == []


class TestNumpyContractRule:
    def test_fires_on_dtype_and_shape_contradictions(self):
        _, findings = lint_with("NDA001", "nda001/core/bad_contract.py")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "float64" in messages and "float32" in messages
        assert "flattens" in messages

    def test_silent_on_kept_or_undeclared_contracts(self):
        _, findings = lint_with("NDA001", "nda001/core/good_contract.py")
        assert findings == []


class TestResourceReleaseRule:
    def test_fires_on_leaky_paths_with_witness(self):
        _, findings = lint_with("RES001", "res001/bad_leak.py")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "socket 'sock'" in messages
        assert "SendWindow 'window'" in messages
        # convictions name the escaping CFG path, not just the acquire line
        for f in findings:
            assert "escaping path" in f.message
            assert "function exit" in f.message
        leak = next(f for f in findings if "sock" in f.message)
        assert "line" in leak.message  # witness steps carry line numbers

    def test_silent_on_released_and_handed_off_resources(self):
        _, findings = lint_with("RES001", "res001/good_release.py")
        assert findings == []


class TestLockPairingRule:
    def test_fires_on_unreleased_paths_with_witness(self):
        _, findings = lint_with("LCK003", "lck003/bad_pairing.py")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "_state_lock.acquire()" in messages
        assert "escaping path" in messages
        assert "with" in messages  # the fix suggestion

    def test_silent_on_paired_with_and_try_acquire(self):
        _, findings = lint_with("LCK003", "lck003/good_pairing.py")
        assert findings == []


class TestWireTagRule:
    BAD = ("tag001/bad/dist/collectives.py", "tag001/bad/dist/wire_user.py")
    GOOD = ("tag001/good/dist/collectives.py", "tag001/good/dist/wire_user.py")

    def test_fires_on_duplicate_orphan_and_stray_tags(self):
        _, findings = lint_with("TAG001", *self.BAD)
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        assert "duplicate wire tag value 1" in messages
        assert "TAG_CLASH" in messages and "TAG_PING" in messages
        assert "TAG_LOCAL" in messages  # defined outside the registry
        assert "TAG_ORPHAN" in messages  # sent but never received
        assert "TAG_PONG" in messages  # received but never sent

    def test_both_sites_are_named(self):
        _, findings = lint_with("TAG001", *self.BAD)
        dup = next(f for f in findings if "duplicate" in f.message)
        # the message carries path:line for both colliding definitions
        assert dup.message.count(":") >= 2
        assert "collectives.py" in dup.message

    def test_silent_on_registry_homed_paired_tags(self):
        _, findings = lint_with("TAG001", *self.GOOD)
        assert findings == []

    def test_real_registry_is_the_single_home(self):
        # the shipped tree keeps every TAG_* in dist/collectives.py,
        # including the pool checkpoint tag this rule forced home
        from repro.dist import collectives
        from repro.pool import jobs

        assert jobs.TAG_POOL_CHECKPOINT == collectives.TAG_POOL_CHECKPOINT


class TestGenerationFenceRule:
    def test_fires_on_unfenced_execute_and_silent_mutation(self):
        _, findings = lint_with("GEN001", "gen001/bad/pool/handler.py")
        assert len(findings) == 2
        unfenced = next(f for f in findings if "execute_job" in f.message)
        assert "fence" in unfenced.message
        assert "unfenced path" in unfenced.message
        silent = next(f for f in findings if "admit" in f.message)
        assert "generation" in silent.message

    def test_silent_on_fenced_paths_and_bumping_mutations(self):
        _, findings = lint_with("GEN001", "gen001/good/pool/handler.py")
        assert findings == []

    def test_out_of_scope_outside_pool(self, tmp_path):
        # the same shapes outside a pool/ component are not flagged
        bad = FIXTURES / "gen001" / "bad" / "pool" / "handler.py"
        stray = tmp_path / "handler.py"
        stray.write_text(bad.read_text())
        engine = LintEngine([rule_by_id("GEN001")])
        assert engine.run([stray]) == []


class TestSuppressions:
    def test_disable_comment_silences_and_stale_comment_warns(self):
        engine = LintEngine()
        findings = engine.run([FIXTURES / "suppress/suppressed.py"])
        assert [f.rule_id for f in findings] == ["SUP001"]
        assert findings[0].severity == "warning"
        assert "LCK002" in findings[0].message

    def test_docstring_mentioning_marker_is_not_a_suppression(self, tmp_path):
        mod = tmp_path / "doc.py"
        mod.write_text(
            '"""Docs may say repro-lint: disable=LCK002 freely."""\n'
            "x = 1\n"
        )
        assert run_lint([mod]) == []


class TestEngine:
    def test_discovery_skips_fixture_trees(self):
        files = discover_files([FIXTURES.parent])
        assert "lint_fixtures" in EXCLUDED_DIRS
        assert not any("lint_fixtures" in str(f) for f in files)

    def test_missing_path_is_loud(self):
        with pytest.raises(ConfigurationError, match="does not exist"):
            discover_files([FIXTURES / "no_such_dir"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        findings = run_lint([broken])
        assert [f.rule_id for f in findings] == ["PAR000"]

    def test_findings_sorted_and_formatted(self):
        _, findings = lint_with("LCK002", "lck002/bad_blocking.py")
        assert findings == sorted(findings)
        text = findings[0].format()
        path, line, col, rest = text.split(":", 3)
        assert path.endswith("bad_blocking.py")
        assert int(line) > 0 and int(col) > 0
        assert rest.strip().startswith("LCK002 ")

    def test_json_schema(self):
        engine = LintEngine()
        findings = engine.run([FIXTURES / "exc001" / "dist" / "bad_except.py"])
        doc = json.loads(engine.to_json(findings))
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["files_scanned"] == 1
        assert doc["counts"] == {"EXC001": 2}
        assert sorted(doc["rules"]) == sorted(
            r.rule_id for r in map(lambda c: c, default_rules())
        )
        for entry in doc["findings"]:
            assert set(entry) == {
                "path", "line", "col", "rule", "message", "severity",
            }
        # schema v2: per-rule wall time rides along for CI budgets
        assert set(doc["timings"]) == set(doc["rules"])
        assert all(sec >= 0.0 for sec in doc["timings"].values())
        assert doc["total_seconds"] >= max(doc["timings"].values())
        for new_rule in ("RES001", "LCK003", "TAG001", "GEN001"):
            assert new_rule in doc["rules"]

    def test_rule_by_id_unknown_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            rule_by_id("NOPE999")


class TestCli:
    def test_lint_findings_exit_1(self, capsys):
        bad = FIXTURES / "clk001" / "serve" / "bad_clock.py"
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "CLK001" in out and "error(s)" in out

    def test_lint_clean_exit_0(self, capsys):
        good = FIXTURES / "clk001" / "serve" / "good_clock.py"
        assert main(["lint", str(good)]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        bad = FIXTURES / "api001" / "bad_exports.py"
        assert main(["lint", str(bad), "--format=json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == {"API001": 3}

    def test_lint_timing_table(self, capsys):
        good = FIXTURES / "clk001" / "serve" / "good_clock.py"
        assert main(["lint", str(good), "--timing"]) == 0
        out = capsys.readouterr().out
        assert "rule timings:" in out
        assert "RES001" in out and "ms" in out

    def test_lint_missing_path_exit_2(self, capsys):
        assert main(["lint", "definitely/not/here"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_paths_rejected_for_other_commands(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "src"])
        assert exc.value.code == 2


class TestTreeIsClean:
    def test_src_lints_clean(self):
        """The gate: the shipped tree has zero findings under src/."""
        engine = LintEngine()
        findings = engine.run([REPO / "src"])
        assert findings == [], "\n" + engine.to_text(findings)

    def test_tests_and_benchmarks_lint_clean(self):
        engine = LintEngine()
        findings = engine.run([REPO / "tests", REPO / "benchmarks"])
        assert findings == [], "\n" + engine.to_text(findings)
