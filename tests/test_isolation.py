"""Regression tests for cross-test singleton isolation.

The default :class:`~repro.fft.pruned_plan.PlanCache` behind
:func:`~repro.fft.pruned_plan.get_plan` is process-wide state: before the
autouse ``_cold_plan_cache`` fixture existed, a test that warmed plans
(or merely bumped the hit/miss metrics) leaked that state into every
later test, hiding cold-start bugs and making cache-metric assertions
order-dependent.  The two pipeline tests below run back-to-back, both
warm the cache, and both assert they started cold — whichever order the
suite (or a shuffled CI run) executes them in.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import LowCommConvolution3D
from repro.fft.pruned_plan import default_cache, get_plan, reset_default_cache
from repro.kernels.gaussian import GaussianKernel


def _run_small_pipeline() -> None:
    spectrum = GaussianKernel(n=16, sigma=1.5).spectrum()
    pipeline = LowCommConvolution3D(16, 4, spectrum)
    field = np.zeros((16, 16, 16))
    field[4:12, 4:12, 4:12] = 1.0
    pipeline.run_serial(field)


def _assert_cold_then_warm() -> None:
    cache = default_cache()
    assert len(cache) == 0, "default plan cache leaked plans from a prior test"
    assert cache.hits == 0 and cache.misses == 0, (
        "default plan cache leaked metrics from a prior test"
    )
    get_plan(16, range(4), range(4), range(4))
    assert len(default_cache()) >= 1  # this test itself warmed it


def test_pipeline_sees_cold_caches_first() -> None:
    _assert_cold_then_warm()
    _run_small_pipeline()


def test_pipeline_sees_cold_caches_second() -> None:
    # identical twin: passes only if the previous test's warmth was reset
    _assert_cold_then_warm()
    _run_small_pipeline()


def test_reset_returns_the_new_live_cache() -> None:
    warmed = get_plan(16, range(4), range(4), range(4))
    assert default_cache().misses == 1
    fresh = reset_default_cache()
    assert fresh is default_cache()
    assert len(fresh) == 0 and fresh.hits == 0 and fresh.misses == 0
    # the old plan object stays usable; the cache just forgot it
    assert warmed.n == 16
