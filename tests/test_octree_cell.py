"""Tests for octree cells and the 5-int metadata codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.octree.cell import (
    METADATA_INTS_PER_CELL,
    OctreeCell,
    decode_metadata,
    encode_metadata,
)


class TestOctreeCell:
    def test_dense_cell_samples_everything(self):
        c = OctreeCell(corner=(0, 0, 0), size=4, rate=1)
        assert c.samples_per_axis == 4
        assert c.sample_count == 64

    def test_rate_two_with_clamped_edge(self):
        # size 8 rate 2: strides 0,2,4,6 then clamp adds 7
        c = OctreeCell(corner=(0, 0, 0), size=8, rate=2)
        np.testing.assert_array_equal(c.axis_coords(0), [0, 2, 4, 6, 7])
        assert c.samples_per_axis == 5

    def test_exact_stride_no_clamp(self):
        # size 9 rate 2: 0,2,4,6,8 — 8 is the far face already
        c = OctreeCell(corner=(0, 0, 0), size=9, rate=2)
        np.testing.assert_array_equal(c.axis_coords(0), [0, 2, 4, 6, 8])

    def test_single_point_cell(self):
        c = OctreeCell(corner=(3, 3, 3), size=1, rate=1)
        assert c.sample_count == 1
        np.testing.assert_array_equal(c.sample_coords(), [[3, 3, 3]])

    def test_rate_equals_size(self):
        c = OctreeCell(corner=(0, 0, 0), size=4, rate=4)
        np.testing.assert_array_equal(c.axis_coords(0), [0, 3])

    def test_coords_absolute(self):
        c = OctreeCell(corner=(10, 20, 30), size=2, rate=1)
        coords = c.sample_coords()
        assert coords[:, 0].min() == 10
        assert coords[:, 1].min() == 20
        assert coords[:, 2].min() == 30

    def test_contains(self):
        c = OctreeCell(corner=(4, 4, 4), size=4, rate=1)
        assert c.contains((4, 7, 5))
        assert not c.contains((8, 4, 4))
        assert not c.contains((3, 4, 4))

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            OctreeCell(corner=(0, 0, 0), size=0, rate=1)
        with pytest.raises(ConfigurationError):
            OctreeCell(corner=(0, 0, 0), size=4, rate=0)
        with pytest.raises(ConfigurationError):
            OctreeCell(corner=(-1, 0, 0), size=4, rate=1)

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_sample_count_matches_coords(self, size, rate):
        c = OctreeCell(corner=(0, 0, 0), size=size, rate=rate)
        assert c.sample_count == len(c.sample_coords())
        assert c.samples_per_axis == len(c.axis_coords(0))
        # far face always covered
        assert c.axis_coords(0)[-1] == size - 1


class TestMetadataCodec:
    def _cells(self):
        return [
            OctreeCell(corner=(0, 0, 0), size=4, rate=1),
            OctreeCell(corner=(4, 0, 0), size=4, rate=2),
            OctreeCell(corner=(0, 4, 0), size=8, rate=4),
        ]

    def test_layout_five_ints(self):
        meta = encode_metadata(self._cells())
        assert meta.dtype == np.int32
        assert meta.size == 3 * METADATA_INTS_PER_CELL

    def test_cumulative_counts(self):
        cells = self._cells()
        meta = encode_metadata(cells)
        assert meta[4] == 0
        assert meta[9] == cells[0].sample_count
        assert meta[14] == cells[0].sample_count + cells[1].sample_count

    def test_roundtrip(self):
        cells = self._cells()
        meta = encode_metadata(cells)
        decoded = decode_metadata(meta, [c.size for c in cells])
        assert decoded == cells

    def test_corrupted_cumulative_detected(self):
        cells = self._cells()
        meta = encode_metadata(cells).copy()
        meta[9] += 1
        with pytest.raises(ConfigurationError, match="cumulative"):
            decode_metadata(meta, [c.size for c in cells])

    def test_wrong_length_detected(self):
        with pytest.raises(ConfigurationError):
            decode_metadata(np.zeros(7, dtype=np.int32), [1])

    def test_size_count_mismatch(self):
        meta = encode_metadata(self._cells())
        with pytest.raises(ConfigurationError):
            decode_metadata(meta, [4, 4])

    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=1, max_value=16),
            st.integers(min_value=1, max_value=16),
        ),
        min_size=1,
        max_size=20,
    ))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, specs):
        cells = [
            OctreeCell(corner=(c, c, c), size=s, rate=r) for c, s, r in specs
        ]
        decoded = decode_metadata(encode_metadata(cells), [c.size for c in cells])
        assert decoded == cells
