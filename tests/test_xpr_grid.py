"""Grid expansion: determinism, stable content-hash ids, loud validation.

The experiment grid is the reproducibility anchor of the xpr subsystem:
the same declaration must expand to the same trials in the same order
with the same ids on every machine, and any malformed declaration must
fail at definition time, not mid-sweep.
"""

import pytest

from repro.errors import ConfigurationError
from repro.xpr.grid import (
    EXPERIMENTS,
    ExperimentGrid,
    TrialSpec,
    content_id,
    define_experiment,
    expand_experiment,
    experiment_names,
)


@pytest.fixture
def scratch_experiment():
    """Register-and-cleanup helper so tests never leak registrations."""
    registered = []

    def register(name, *grids):
        define_experiment(name, *grids)
        registered.append(name)

    yield register
    for name in registered:
        EXPERIMENTS.pop(name, None)


class TestContentId:
    def test_independent_of_key_order(self):
        assert content_id({"a": 1, "b": 2}) == content_id({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert content_id({"a": 1}) != content_id({"a": 2})

    def test_twelve_hex_chars(self):
        cid = content_id({"mode": "serial", "n": 32})
        assert len(cid) == 12
        int(cid, 16)  # parses as hex


class TestTrialSpec:
    def test_id_excludes_experiment_name(self):
        a = TrialSpec(experiment="alpha", mode="serial", n=32, k=8)
        b = TrialSpec(experiment="beta", mode="serial", n=32, k=8)
        assert a.trial_id == b.trial_id

    def test_id_stable_across_constructions(self):
        kwargs = dict(mode="dist", n=32, k=8, transport="local", ranks=2)
        assert (
            TrialSpec(experiment="e", **kwargs).trial_id
            == TrialSpec(experiment="e", **kwargs).trial_id
        )

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            TrialSpec(experiment="e", mode="warp")

    def test_rejects_unknown_transport(self):
        with pytest.raises(ConfigurationError, match="transport"):
            TrialSpec(experiment="e", transport="carrier-pigeon")

    def test_rejects_nonpositive_ints(self):
        with pytest.raises(ConfigurationError, match="ranks"):
            TrialSpec(experiment="e", ranks=0)

    def test_rejects_k_not_dividing_n(self):
        with pytest.raises(ConfigurationError, match="divide"):
            TrialSpec(experiment="e", n=30, k=8)

    def test_label_mentions_dist_topology(self):
        spec = TrialSpec(
            experiment="e", mode="dist", transport="tcp", ranks=4,
            overlap=True,
        )
        assert "tcp/p4" in spec.label()
        assert "overlap" in spec.label()


class TestExperimentGrid:
    def test_expansion_is_deterministic(self):
        grid = ExperimentGrid(
            "det",
            matrix={"mode": ["serial", "parallel"], "seed": [0, 1, 2]},
            fixed={"n": 32, "k": 8},
        )
        first = [t.trial_id for t in grid.expand()]
        second = [t.trial_id for t in grid.expand()]
        assert first == second
        assert len(first) == 6
        assert len(set(first)) == 6

    def test_axes_sweep_in_sorted_name_order(self):
        # 'mode' sorts before 'seed', so mode is the outer loop.
        grid = ExperimentGrid(
            "order", matrix={"seed": [0, 1], "mode": ["serial", "parallel"]}
        )
        modes = [t.mode for t in grid.expand()]
        assert modes == ["serial", "serial", "parallel", "parallel"]

    def test_rejects_unknown_parameter(self):
        with pytest.raises(ConfigurationError, match="unknown grid parameter"):
            ExperimentGrid("bad", matrix={"wat": [1]})

    def test_rejects_matrix_fixed_overlap(self):
        with pytest.raises(ConfigurationError, match="both"):
            ExperimentGrid(
                "bad", matrix={"n": [32]}, fixed={"n": 32}
            )

    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigurationError, match="empty"):
            ExperimentGrid("bad", matrix={"seed": []})

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            ExperimentGrid("")


class TestExperimentRegistry:
    def test_expand_unknown_experiment_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            expand_experiment("definitely-not-registered")

    def test_overlapping_grids_deduplicate(self, scratch_experiment):
        grid = ExperimentGrid(
            "dup", matrix={"seed": [0, 1]}, fixed={"n": 32, "k": 8}
        )
        scratch_experiment("dup", grid, grid)  # same grid twice
        trials = expand_experiment("dup")
        assert len(trials) == 2  # not 4: ids collapse duplicates

    def test_builtin_reference_experiments(self):
        names = experiment_names()
        assert "ref-quick" in names and "ref-full" in names
        quick = expand_experiment("ref-quick")
        assert len(quick) == 6
        assert {t.mode for t in quick} == {
            "serial", "parallel", "serve", "dist", "pool",
        }
        assert len(expand_experiment("ref-full")) == 15

    def test_ref_quick_ids_are_stable(self):
        # Pinned: these ids key the committed TRAJECTORY.jsonl baseline.
        ids = [t.trial_id for t in expand_experiment("ref-quick")]
        assert ids == [
            "7f86aeae4624",
            "782e83959f4e",
            "4f60d596ac2d",
            "8500ad0e6704",
            "3c0e414592a2",
            "17f35271da56",
        ]
