"""Frame codec tests: every truncation/corruption is a typed error."""

import numpy as np
import pytest

from repro.dist.wire import (
    FRAME_MAGIC,
    FRAME_VERSION,
    HEADER_BYTES,
    Frame,
    FrameKind,
    decode_frame,
    decode_header,
    encode_frame,
    read_frame,
)
from repro.errors import TransportError


class TestRoundtrip:
    @pytest.mark.parametrize("kind", list(FrameKind))
    def test_all_kinds(self, kind):
        frame = Frame(kind, src=3, tag=17, payload=b"hello")
        back = decode_frame(encode_frame(frame))
        assert back == frame

    def test_empty_payload(self):
        frame = Frame(FrameKind.HEARTBEAT, src=0, tag=0)
        data = encode_frame(frame)
        assert len(data) == HEADER_BYTES
        assert decode_frame(data) == frame

    def test_large_payload(self, rng):
        payload = rng.integers(0, 256, size=100_000, dtype=np.uint8).tobytes()
        frame = Frame(FrameKind.DATA, src=7, tag=-2, payload=payload)
        back = decode_frame(encode_frame(frame))
        assert back.payload == payload
        assert back.tag == -2

    def test_nbytes_is_wire_size(self):
        frame = Frame(FrameKind.DATA, src=1, tag=2, payload=b"xyz")
        assert frame.nbytes == len(encode_frame(frame)) == HEADER_BYTES + 3

    def test_header_layout(self):
        data = encode_frame(Frame(FrameKind.DATA, src=1, tag=2, payload=b"p"))
        assert data[:4] == FRAME_MAGIC
        assert data[4] == FRAME_VERSION
        assert data[5] == int(FrameKind.DATA)


class TestRejection:
    def test_short_header(self):
        with pytest.raises(TransportError, match="truncated frame header"):
            decode_header(FRAME_MAGIC)

    def test_bad_magic_offset_zero(self):
        data = bytearray(encode_frame(Frame(FrameKind.DATA, 0, 0, b"x")))
        data[0] ^= 0xFF
        with pytest.raises(TransportError, match="offset 0"):
            decode_header(bytes(data))

    def test_bad_version_offset(self):
        data = bytearray(encode_frame(Frame(FrameKind.DATA, 0, 0, b"x")))
        data[4] = 99
        with pytest.raises(TransportError, match="version 99 at offset 4"):
            decode_header(bytes(data))

    def test_unknown_kind(self):
        data = bytearray(encode_frame(Frame(FrameKind.DATA, 0, 0, b"x")))
        data[5] = 200
        with pytest.raises(TransportError, match="kind 200 at offset 5"):
            decode_header(bytes(data))

    def test_negative_length(self):
        data = bytearray(encode_frame(Frame(FrameKind.DATA, 0, 0)))
        data[12:20] = (-1).to_bytes(8, "little", signed=True)
        with pytest.raises(TransportError, match="length -1 at offset 12"):
            decode_header(bytes(data))

    def test_truncated_payload(self):
        data = encode_frame(Frame(FrameKind.DATA, 0, 0, b"0123456789"))
        with pytest.raises(TransportError, match="truncated at offset"):
            decode_frame(data[:-4])

    def test_src_int16_bounds(self):
        with pytest.raises(TransportError, match="int16"):
            encode_frame(Frame(FrameKind.DATA, src=1 << 16, tag=0))


class TestStreamReader:
    def test_read_frame_from_stream(self):
        frame = Frame(FrameKind.DATA, src=2, tag=9, payload=b"streamed")
        stream = encode_frame(frame)
        pos = [0]

        def read_exact(n):
            chunk = stream[pos[0] : pos[0] + n]
            pos[0] += n
            return chunk

        assert read_frame(read_exact) == frame

    def test_read_frame_short_payload(self):
        frame = Frame(FrameKind.DATA, src=2, tag=9, payload=b"streamed")
        stream = encode_frame(frame)[:-3]
        pos = [0]

        def read_exact(n):
            chunk = stream[pos[0] : pos[0] + n]
            pos[0] += n
            return chunk

        with pytest.raises(TransportError, match="truncated at offset"):
            read_frame(read_exact)
