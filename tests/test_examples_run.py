"""Smoke tests: every example script runs to completion.

The examples are the library's documented entry points (deliverable-level
API usage); each embeds its own assertions, so a clean exit means the
documented behaviour holds.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: generous per-script budget; the heaviest (homogenization: 12 solver
#: runs) takes ~1 minute on a laptop
TIMEOUT_S = 420


def test_examples_directory_populated():
    assert len(ALL_EXAMPLES) >= 9
    assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
