"""Polycrystal micromechanics — the application MASSIF exists for.

"Scaling and accelerating MASSIF has a wide range of applications for
studying micromechanical properties of polycrystals" (§2.2).  This
example builds a Voronoi polycrystal of cubic-anisotropy grains with
uniformly random orientations, solves the stress-strain problem under
uniaxial loading with the accelerated scheme, and reports the grain-scale
stress heterogeneity a single-crystal model cannot capture.

Run:  python examples/polycrystal.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.massif import EyreMiltonSolver, MassifSolver
from repro.massif.elasticity import cubic_stiffness
from repro.massif.orientation import polycrystal_stiffness_field


def main() -> None:
    n, grains = 16, 8
    # Copper-like cubic constants (units of c44): strong anisotropy,
    # Zener ratio 2 c44 / (c11 - c12) ≈ 3.2.
    crystal = cubic_stiffness(c11=2.24, c12=1.60, c44=1.0)
    rng = np.random.default_rng(42)
    stiffness = polycrystal_stiffness_field(n, grains, crystal, rng=rng)
    print(f"polycrystal: {n}^3 grid, {grains} grains, "
          f"cubic anisotropy (Zener ratio "
          f"{2 * 1.0 / (2.24 - 1.60):.1f})")

    macro = np.zeros((3, 3))
    macro[0, 0] = 0.01

    basic = MassifSolver(stiffness, tol=1e-4, max_iter=2000).solve(macro)
    fast = EyreMiltonSolver(stiffness, tol=1e-4, max_iter=2000).solve(macro)
    print(f"iterations: basic scheme {basic.iterations}, "
          f"Eyre-Milton {fast.iterations}")

    # Per-grain stress statistics: the heterogeneity MASSIF resolves.
    sxx = basic.stress[0, 0]
    rows = []
    for g in range(grains):
        mask = stiffness.phase_map == g
        rows.append([g, int(mask.sum()), sxx[mask].mean(), sxx[mask].std()])
    print(
        format_table(
            ["grain", "voxels", "<sigma_xx>", "std(sigma_xx)"],
            rows,
            title="Grain-resolved axial stress",
        )
    )
    grain_means = np.array([r[2] for r in rows])
    spread = grain_means.max() - grain_means.min()
    print(f"\ninter-grain stress spread: {spread:.4f} "
          f"({100 * spread / sxx.mean():.1f}% of the mean) — the quantity "
          "polycrystal studies resolve and homogenized models miss")
    assert spread > 0.001  # anisotropy must show up across orientations


if __name__ == "__main__":
    main()
