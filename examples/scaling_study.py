"""Scaling study on the simulated cluster: where the communication goes.

Reproduces the paper's communication story end to end:

1. Executes a traditional pencil-decomposed distributed convolution and
   the low-communication pipeline over a simulated 4-rank cluster and
   reads the traffic ledgers (Figure 1).
2. Sweeps worker counts through the Eq 1 / Eq 6 cost models.
3. Shows the heFFTe-style overlap curve saturating like plain MPI FFT.

Run:  python examples/scaling_study.py
"""

from repro.analysis.experiments import run_comm_time_sweep, run_fig1_comm_rounds
from repro.analysis.tables import format_table
from repro.baselines.heffte_like import scaling_curve
from repro.cluster.device import XEON_GOLD_6148
from repro.cluster.network import Link


def main() -> None:
    # -- 1. executed communication patterns (Figure 1) ------------------------
    res = run_fig1_comm_rounds(n=32, k=8, p=4, r=4)
    print(
        format_table(
            ["pipeline", "all-to-all rounds", "bytes on wire"],
            [
                ["traditional (4 = 2 per FFT x 2 FFTs)", res.traditional_rounds,
                 res.traditional_bytes],
                ["ours (1 sparse allgather)", res.ours_rounds, res.ours_bytes],
            ],
            title="Executed on a simulated 4-rank cluster (N=32, k=8, r=4)",
        )
    )
    print(f"traditional result exact: {res.results_match}; "
          f"ours approximate, L2 error {res.approx_error:.3f}\n")

    # -- 2. Eq 1 vs Eq 6 over worker counts ------------------------------------
    rows = run_comm_time_sweep(n=1024, k=128, r=8, p_values=[8, 64, 512, 4096])
    print(
        format_table(
            ["P", "T_Comm,FFT (Eq 1)", "T_ours (Eq 6)", "advantage"],
            rows,
            title="Communication time models, N=1024, k=128, r=8",
        )
    )
    print()

    # -- 3. heFFTe-style overlap: later, but same, saturation -------------------
    curve = scaling_curve(1024, [8, 64, 512, 4096, 32768], XEON_GOLD_6148, Link())
    print(
        format_table(
            ["P", "MPI FFT (s)", "heFFTe-like (s)"],
            curve,
            title="Distributed FFT per-transform time (compute/P + exposed comm)",
        )
    )
    print("\nNote how the heFFTe-like curve tracks below plain MPI FFT but "
          "flattens at large P all the same — the paper's argument for "
          "removing the all-to-alls instead of optimizing them.")


if __name__ == "__main__":
    main()
