"""The Fig 5 FFTX program: declarative specification of the MASSIF
convolution, optimization pass, and observe-mode execution.

Run:  python examples/fftx_pipeline.py
"""

import numpy as np

from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.fftx import (
    ExecutionStats,
    FFTX_HIGH_PERFORMANCE,
    FFTX_MODE_OBSERVE,
    fftx_execute,
    fftx_init,
    fftx_shutdown,
    massif_convolution_plan,
    optimize_plan,
)
from repro.kernels import GaussianKernel


def main() -> None:
    n, k = 64, 16
    corner = (24, 24, 24)
    spectrum = GaussianKernel(n=n, sigma=2.0).spectrum()
    policy = SamplingPolicy(r_near=2, r_mid=8, r_far=16, min_cell=2)

    fftx_init(FFTX_HIGH_PERFORMANCE | FFTX_MODE_OBSERVE)
    try:
        # Compose the four sub-plans of Fig 5.
        plan, pattern = massif_convolution_plan(
            n, k, corner, spectrum, policy=policy, batch=1024
        )
        print(f"composed plan: {plan.num_subplans} sub-plans "
              f"({[sp.kind for sp in plan.subplans]})")

        # The "SPIRAL-lite" pass: fuse the transform with the pointwise
        # multiply (what the hand-written POC needed cuFFT callbacks for).
        optimized, report = optimize_plan(plan)
        print(f"optimizer: fused {report.fused_pairs}, "
              f"estimated {report.total_flops:.2e} flops, "
              f"workspace saving {100 * report.workspace_savings:.0f}%")

        # Execute with observe-mode statistics.
        rng = np.random.default_rng(0)
        sub = 1.0 + 0.1 * rng.standard_normal((k, k, k))
        stats = ExecutionStats()
        compressed = fftx_execute(optimized, sub, stats=stats)
        for kind, seconds, nbytes in stats.steps:
            print(f"  {kind:22s} {seconds * 1e3:8.2f} ms   {nbytes / 1e6:8.2f} MB out")
        print(f"result: {compressed.pattern.sample_count} samples "
              f"({pattern.compression_ratio:.1f}x compression)")

        # Cross-check against the imperative pipeline.
        reference = LocalConvolution(n, spectrum, policy, batch=1024).convolve(
            sub, corner
        )
        max_diff = float(np.max(np.abs(compressed.values - reference.values)))
        print(f"max |FFTX - hand-written pipeline| = {max_diff:.2e}")
        assert max_diff < 1e-10
    finally:
        fftx_shutdown()


if __name__ == "__main__":
    main()
