"""Quickstart: low-communication approximate 3D convolution in ~30 lines.

Builds a sharp Gaussian kernel (the paper's proof-of-concept Green's
function stand-in), convolves a composite-like field through the
compressed domain-decomposed pipeline, and compares against the exact
dense FFT convolution.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import LowCommConvolution3D, SamplingPolicy, reference_convolve
from repro.kernels import GaussianKernel
from repro.util.arrays import l2_relative_error


def main() -> None:
    n, k = 64, 16  # grid 64^3, sub-domains 16^3

    # 1. A rapidly decaying kernel with a real-valued spectrum — the class
    #    of kernels the method targets.
    kernel = GaussianKernel(n=n, sigma=2.0)
    spectrum = kernel.spectrum()

    # 2. An input field: a block inclusion (think: stiff phase in a matrix).
    field = np.zeros((n, n, n))
    field[20:44, 20:44, 20:44] = 1.0

    # 3. The low-communication pipeline: banded octree sampling, the paper's
    #    r = 2 / 8 / 16 schedule.
    policy = SamplingPolicy(r_near=2, r_mid=8, r_far=16, min_cell=2)
    pipeline = LowCommConvolution3D(n, k, spectrum, policy, batch=1024)
    result = pipeline.run_serial(field)

    # 4. Compare with the exact dense convolution.
    exact = reference_convolve(field, spectrum)
    error = l2_relative_error(result.approx, exact)

    print(f"grid {n}^3, sub-domains {k}^3 ({result.num_subdomains} non-zero)")
    print(f"compressed result: {result.total_samples} samples, "
          f"{result.compressed_bytes / 1e6:.2f} MB "
          f"({result.compression_ratio:.1f}x smaller than dense per-domain results)")
    print(f"relative L2 error vs exact convolution: {error:.4f} "
          f"(paper's tolerance: 0.03)")
    assert error < 0.03


if __name__ == "__main__":
    main()
