"""Hyperparameter autotuning for a target GPU (paper §5.4).

Sweeps sub-domain size k, downsampling rate r, and batch size B for a
2048^3 convolution on the paper's two V100 configurations, using the
Table-4-calibrated memory model and the Table-3-calibrated time model, and
reports the fastest feasible configuration per device.

Run:  python examples/autotune_gpu.py
"""

from repro.analysis.tables import format_table
from repro.cluster.device import V100_16GB, V100_32GB
from repro.core.autotune import autotune


def main() -> None:
    n = 2048
    for device in (V100_16GB, V100_32GB):
        result = autotune(
            n,
            device,
            k_candidates=[8, 16, 32, 64, 128, 256],
            r_candidates=[32, 64, 128],
            batch_candidates=[1024, 4096, 16384],
        )
        rows = [
            [e.k, e.r, e.batch, "yes" if e.fits else "no",
             e.modeled_time_s, e.modeled_memory_gb]
            for e in result.evaluations
            if e.batch == 4096  # one batch column for readability
        ]
        print(
            format_table(
                ["k", "r", "B", "fits", "time (s)", "memory (GiB)"],
                rows,
                title=f"N={n} sweep on {device.name} "
                f"({device.memory_bytes / 2**30:.0f} GiB)",
            )
        )
        if result.best is None:
            print("  no feasible configuration\n")
        else:
            b = result.best
            print(f"  best: k={b.k} r={b.r} B={b.batch} -> "
                  f"{b.modeled_time_s:.2f} s, {b.modeled_memory_gb:.1f} GiB\n")


if __name__ == "__main__":
    main()
