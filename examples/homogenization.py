"""Effective-stiffness homogenization of a composite — the MASSIF payoff.

Extracts the full effective stiffness tensor of a two-phase composite by
running the six unit load cases, once with the exact Algorithm-1 solver
and once with the low-communication Algorithm-2 solver, and checks both
against the Voigt/Reuss bounds.

Run:  python examples/homogenization.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.policy import SamplingPolicy
from repro.kernels.green_massif import LameParameters
from repro.massif import (
    LowCommMassifSolver,
    MassifSolver,
    StiffnessField,
    bounds_respected,
    homogenize,
    isotropic_stiffness,
    reuss_bound,
    sphere_inclusion,
    voigt_bound,
)


def main() -> None:
    n = 16
    matrix = isotropic_stiffness(LameParameters.from_young_poisson(1.0, 0.3))
    inclusion = isotropic_stiffness(LameParameters.from_young_poisson(4.0, 0.3))
    stiffness = StiffnessField(sphere_inclusion(n, radius=5), [matrix, inclusion])

    exact = homogenize(MassifSolver(stiffness, tol=1e-4, max_iter=300))
    lowcomm = homogenize(
        LowCommMassifSolver(
            stiffness,
            k=8,
            policy=SamplingPolicy.flat_rate(2),
            tol=1e-4,
            max_iter=200,
            batch=n * n,
            stall_window=10,
            raise_on_fail=False,
        )
    )

    v = voigt_bound(stiffness)
    r = reuss_bound(stiffness)
    labels = ["C11", "C12", "C44"]
    idx = [(0, 0), (0, 1), (3, 3)]
    print(
        format_table(
            ["component", "Reuss (lower)", "Alg 1", "Alg 2 (r=2)", "Voigt (upper)"],
            [
                [
                    lab,
                    r[i, j],
                    exact.c_eff_voigt[i, j],
                    lowcomm.c_eff_voigt[i, j],
                    v[i, j],
                ]
                for lab, (i, j) in zip(labels, idx)
            ],
            title=f"Effective stiffness, {n}^3 two-phase composite "
            f"(4x contrast, {stiffness.phase_map.mean():.2f} volume fraction)",
        )
    )
    rel = np.abs(
        lowcomm.c_eff_voigt[0, 0] - exact.c_eff_voigt[0, 0]
    ) / abs(exact.c_eff_voigt[0, 0])
    print(f"\nAlg 2 vs Alg 1 on C11: {100 * rel:.2f}% "
          f"(load-case iterations: {exact.iterations} vs {lowcomm.iterations})")
    print(f"bounds respected: Alg 1 {bounds_respected(exact.c_eff_voigt, stiffness, 1e-3)}, "
          f"Alg 2 {bounds_respected(lowcomm.c_eff_voigt, stiffness, 1e-2)}")
    assert rel < 0.02


if __name__ == "__main__":
    main()
