"""MASSIF use case: stress-strain simulation of a two-phase composite.

Runs the reference Moulinec-Suquet fixed-point solver (the paper's
Algorithm 1) and the low-communication solver (Algorithm 2) on a stiff
spherical inclusion in a soft matrix, under 1% uniaxial macroscopic
strain, and compares convergence and the homogenized stress.

Run:  python examples/massif_simulation.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.policy import SamplingPolicy
from repro.kernels.green_massif import LameParameters
from repro.massif import (
    LowCommMassifSolver,
    MassifSolver,
    StiffnessField,
    isotropic_stiffness,
    sphere_inclusion,
)


def main() -> None:
    n, k = 16, 8
    # Matrix: E=1, nu=0.3.  Inclusion: 5x stiffer.
    matrix = isotropic_stiffness(LameParameters.from_young_poisson(1.0, 0.3))
    inclusion = isotropic_stiffness(LameParameters.from_young_poisson(5.0, 0.3))
    phase = sphere_inclusion(n, radius=5)
    stiffness = StiffnessField(phase, [matrix, inclusion])
    print(f"microstructure: {n}^3 grid, inclusion volume fraction "
          f"{phase.mean():.3f}")

    macro = np.zeros((3, 3))
    macro[0, 0] = 0.01  # 1% uniaxial strain

    # Algorithm 1: exact spectral Gamma convolution each iteration.
    alg1 = MassifSolver(stiffness, tol=1e-4, max_iter=200).solve(macro)

    # Algorithm 2: domain-local compressed convolution, one sparse
    # exchange per iteration; stall detection stops at the compression
    # error floor.
    alg2 = LowCommMassifSolver(
        stiffness,
        k=k,
        policy=SamplingPolicy.flat_rate(2),
        tol=1e-4,
        max_iter=200,
        batch=n * n,
        stall_window=10,
        raise_on_fail=False,
    ).solve(macro)

    eff1 = alg1.effective_stress()[0, 0]
    eff2 = alg2.effective_stress()[0, 0]
    print(
        format_table(
            ["quantity", "Algorithm 1 (exact)", "Algorithm 2 (compressed r=2)"],
            [
                ["iterations", alg1.iterations, alg2.iterations],
                ["converged / stalled", str(alg1.converged), f"stalled={alg2.stalled}"],
                ["final residual", alg1.residuals[-1], min(alg2.residuals)],
                ["effective stress_xx", eff1, eff2],
            ],
            title="MASSIF inner loop comparison",
        )
    )
    rel = abs(eff2 - eff1) / abs(eff1)
    print(f"\nhomogenized stress agreement: {100 * rel:.2f}% "
          "(the paper's claim: moderate convolution error does not change "
          "the macroscopic answer)")
    assert rel < 0.01


if __name__ == "__main__":
    main()
