"""Particle-in-cell field solve through the low-communication pipeline.

The paper's conclusion names particle-in-cell simulations — "field
calculations for particle-in-cell simulations require large 3D FFTs of
10^9-10^12 points" — as the next target for the method.  This example
implements one PIC step at laptop scale:

1. deposit charged particles onto the grid (cloud-in-cell weighting);
2. solve the Poisson equation for the potential — through the compressed
   low-communication pipeline, since particle clouds are spatially
   localized (most sub-domains are empty and are skipped by the
   content-adaptive decomposition);
3. compute the electric field by finite differences and gather the force
   at each particle.

Run:  python examples/particle_in_cell.py
"""

import numpy as np

from repro.core.adaptive import AdaptiveConvolution
from repro.core.policy import SamplingPolicy
from repro.kernels import PoissonKernel
from repro.util.arrays import l2_relative_error


def deposit_cic(positions: np.ndarray, charges: np.ndarray, n: int) -> np.ndarray:
    """Cloud-in-cell charge deposition onto an n^3 periodic grid."""
    rho = np.zeros((n, n, n))
    base = np.floor(positions).astype(int)
    frac = positions - base
    for dx in (0, 1):
        for dy in (0, 1):
            for dz in (0, 1):
                w = (
                    (frac[:, 0] if dx else 1 - frac[:, 0])
                    * (frac[:, 1] if dy else 1 - frac[:, 1])
                    * (frac[:, 2] if dz else 1 - frac[:, 2])
                )
                np.add.at(
                    rho,
                    (
                        (base[:, 0] + dx) % n,
                        (base[:, 1] + dy) % n,
                        (base[:, 2] + dz) % n,
                    ),
                    w * charges,
                )
    return rho


def gather_field(potential: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """E = -grad(phi), central differences, nearest-cell gather."""
    e = np.stack(
        [
            -(np.roll(potential, -1, axis=i) - np.roll(potential, 1, axis=i)) / 2.0
            for i in range(3)
        ],
        axis=-1,
    )
    idx = np.round(positions).astype(int) % potential.shape[0]
    return e[idx[:, 0], idx[:, 1], idx[:, 2]]


def main() -> None:
    n = 64
    rng = np.random.default_rng(7)

    # Two localized particle clouds with opposite charge (zero net charge).
    n_particles = 4000
    cloud_a = rng.normal(loc=20.0, scale=2.0, size=(n_particles // 2, 3))
    cloud_b = rng.normal(loc=44.0, scale=2.0, size=(n_particles // 2, 3))
    positions = np.concatenate([cloud_a, cloud_b]) % n
    charges = np.concatenate(
        [np.ones(n_particles // 2), -np.ones(n_particles // 2)]
    )

    rho = deposit_cic(positions, charges, n)
    print(f"deposited {n_particles} particles; grid occupancy "
          f"{100 * np.mean(np.abs(rho) > 1e-12):.1f}% of voxels")

    poisson = PoissonKernel(n=n, length=1.0)
    exact_phi = poisson.solve(rho)

    # Compressed solve: the clouds are localized, so the content-adaptive
    # decomposition only processes the occupied corner blocks.
    solver = AdaptiveConvolution(
        n,
        poisson.spectrum(),
        SamplingPolicy(r_near=2, r_mid=4, r_far=8, min_cell=2),
        k_max=16,
        batch=1024,
        threshold=1e-12,
    )
    result = solver.run(rho)
    err = l2_relative_error(result.approx, exact_phi)
    print(f"adaptive decomposition: {len(result.subdomains)} active blocks, "
          f"skipped {100 * result.skipped_volume / n**3:.1f}% of the volume")
    print(f"potential relative L2 error: {err:.4f}")

    # Forces on the particles from exact vs compressed potential.
    f_exact = gather_field(exact_phi, positions)
    f_approx = gather_field(result.approx, positions)
    f_err = np.linalg.norm(f_approx - f_exact) / np.linalg.norm(f_exact)
    print(f"particle force relative error: {f_err:.4f}")
    assert err < 0.1 and f_err < 0.15


if __name__ == "__main__":
    main()
