"""Poisson equation solve through the low-communication pipeline.

The Poisson Green's function ``1/(4 pi |x|)`` (paper Eq 5) is the
canonical relative of the MASSIF kernel: real spectrum, monotone decay.
This example solves ``-lap u = f`` for a pair of opposite charge blobs and
compares the pipeline's compressed solve against the exact spectral solve.

Run:  python examples/poisson_solver.py
"""

import numpy as np

from repro.core import LowCommConvolution3D, SamplingPolicy
from repro.kernels import PoissonKernel
from repro.util.arrays import l2_relative_error


def main() -> None:
    n, k = 64, 16
    poisson = PoissonKernel(n=n, length=1.0)

    # Two Gaussian charge blobs of opposite sign (zero net charge, as
    # periodic boundary conditions require).
    x = np.arange(n) / n
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")

    def blob(cx, cy, cz, w=0.06):
        return np.exp(
            -((X - cx) ** 2 + (Y - cy) ** 2 + (Z - cz) ** 2) / (2 * w * w)
        )

    f = blob(0.35, 0.5, 0.5) - blob(0.65, 0.5, 0.5)

    exact = poisson.solve(f)

    policy = SamplingPolicy(r_near=2, r_mid=4, r_far=8, min_cell=2)
    pipeline = LowCommConvolution3D(n, k, poisson.spectrum(), policy, batch=1024)
    result = pipeline.run_serial(f)

    err = l2_relative_error(result.approx, exact)
    print(f"grid {n}^3, {result.num_subdomains} active sub-domains of {k}^3")
    print(f"potential extrema: exact [{exact.min():+.4e}, {exact.max():+.4e}], "
          f"approx [{result.approx.min():+.4e}, {result.approx.max():+.4e}]")
    print(f"compressed to {result.total_samples} samples "
          f"({result.compression_ratio:.1f}x)")
    print(f"relative L2 error: {err:.4f}")
    # The 1/r tail decays more slowly than a Gaussian, so the error budget
    # is looser than the MASSIF case — still well under 10%.
    assert err < 0.1


if __name__ == "__main__":
    main()
