"""E9 — §5.3: MASSIF convergence under approximate convolution.

The paper's claim: "convolution error up to 3% did not largely impact
convergence or number of iterations".  We run Algorithm 1 (exact) and
Algorithm 2 (compressed, r=2) on a two-phase composite:

- with r=1 the low-communication loop matches Algorithm 1 bit-for-bit;
- with r=2 the *homogenized* stress agrees to < 1% and the iteration
  stalls cleanly at a residual floor set by the compression (the
  reproduction finding documented in EXPERIMENTS.md: local fields carry a
  several-percent error, macroscopic outputs do not).
"""

from conftest import emit

from repro.analysis.experiments import run_massif_convergence
from repro.analysis.tables import format_table


def test_massif_alg1_vs_alg2(benchmark):
    res = benchmark(run_massif_convergence)
    emit(
        format_table(
            ["quantity", "value"],
            [
                ["Alg 1 iterations", res.alg1_iterations],
                ["Alg 2 iterations (to floor)", res.alg2_iterations],
                ["Alg 2 stalled at floor", res.alg2_stalled],
                ["Alg 2 best residual", res.alg2_best_residual],
                ["effective stress error", res.effective_stress_error],
                ["strain field error", res.strain_field_error],
            ],
            title="MASSIF: Algorithm 1 (exact) vs Algorithm 2 (r=2)",
        )
    )
    assert res.effective_stress_error < 0.01  # homogenized output preserved
    assert res.alg2_best_residual < 0.01  # converges to a real floor
    assert res.alg2_iterations <= 2 * res.alg1_iterations + 10


def test_massif_lossless_equivalence(benchmark):
    """r = 1: Algorithm 2 is Algorithm 1 with a different execution layout."""
    res = benchmark(run_massif_convergence, n=8, k=4, r=1, max_iter=150)
    emit(
        f"r=1: strain field error {res.strain_field_error:.2e}, "
        f"iterations {res.alg1_iterations} vs {res.alg2_iterations}"
    )
    assert res.strain_field_error < 1e-7
    assert res.alg1_iterations == res.alg2_iterations
