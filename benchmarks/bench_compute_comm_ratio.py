"""E11 — §2.1 motivation: the compute-to-communication ratio story.

"When a 1024^3 FFT was computed in parallel on 4 CPU nodes, 49.45% of the
runtime is spent in communication and only 11.77% in computing the FFT.
When accelerated using 4 GPU nodes, the communication time was 97% of the
runtime, even though computation was 43x faster."

Two reproductions:

1. The arithmetic projection: accelerating all non-communication work by
   43x takes the measured 49.45% to 97.7% — the paper's numbers are
   internally consistent and reproduce exactly.
2. The model-based breakdown: running the distributed-FFT cost models with
   the CPU vs GPU device parameters shifts the communication fraction the
   same direction.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.cluster.device import V100_32GB, XEON_GOLD_6148
from repro.cluster.network import Link
from repro.cluster.trace import distributed_fft_breakdown, gpu_acceleration_story


def test_acceleration_projection(benchmark):
    rows = benchmark(gpu_acceleration_story)
    emit(
        format_table(
            ["configuration", "comm fraction"],
            rows,
            title="§2.1: communication fraction, CPU -> GPU (projection)",
        )
    )
    assert rows[0][1] == 0.4945
    assert 0.95 < rows[1][1] < 0.99  # the paper's "97%"


def test_model_breakdown_shift(benchmark):
    link = Link()

    def both():
        cpu = distributed_fft_breakdown(1024, 4, XEON_GOLD_6148, link)
        gpu = distributed_fft_breakdown(1024, 4, V100_32GB, link)
        return cpu, gpu

    cpu, gpu = benchmark(both)
    emit(
        format_table(
            ["nodes", "compute (s)", "comm+staging (s)", "non-FFT fraction"],
            [
                ["4x CPU", cpu.compute_s, cpu.comm_s, 1 - cpu.compute_fraction],
                ["4x GPU", gpu.compute_s, gpu.comm_s, 1 - gpu.compute_fraction],
            ],
            title="Distributed 1024^3 FFT breakdown (cost models)",
        )
    )
    assert gpu.comm_fraction > cpu.comm_fraction
    # on GPUs, FFT compute is a small minority of the runtime (the study's
    # 97% was on a slower 2019 fabric; our modern-link model gives >60%)
    assert 1 - gpu.compute_fraction > 0.6
    assert cpu.compute_fraction > 0.5  # CPUs are still compute-dominated
