"""Serialization microbenchmark: encode/decode MB/s + bytes copied per field.

Standalone script (not a pytest module): measures the codec at the dist
reference sub-domain shape (n=32, k=8, flat:2) —

- **encode**: zero-copy segment emission (:func:`serialize_segments`)
  vs the legacy contiguous encoder (:func:`serialize_compressed`), and
  the float32 downcast path;
- **decode**: zero-copy aliasing decode (:func:`deserialize_compressed`)
  vs decoding into a preallocated arena (:func:`deserialize_into`);
- **bytes copied per field** at each :mod:`repro.util.copytrack` site —
  the segment paths must report exactly zero for float64.

Writes ``BENCH_serialize.json`` at the repository root (uploaded as a CI
artifact alongside the other bench reports).

Usage::

    PYTHONPATH=src python benchmarks/bench_serialize.py \
        [--repeats ENCODE_ITERS] [--output PATH] [--quick]

``--repeats`` sets the encode iteration count (decode runs a quarter of
it); ``--quick`` divides both by 10 for smoke runs.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.octree.compress import CompressedField
from repro.octree.sampling import build_flat_pattern
from repro.octree.serialize import (
    deserialize_compressed,
    deserialize_into,
    serialize_compressed,
    serialize_segments,
)
from repro.util import copytrack
from repro.xpr.registry import bench_argument_parser
from repro.xpr.store import bench_envelope, write_bench

N, K, RATE, SEED = 32, 8, 2, 0
ENCODE_ITERS, DECODE_ITERS = 2000, 500
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serialize.json"


def _reference_field() -> CompressedField:
    pattern = build_flat_pattern(N, K, (8, 8, 8), r=RATE)
    rng = np.random.default_rng(SEED)
    dense = rng.standard_normal((N, N, N))
    return CompressedField.from_dense(dense, pattern)


def _timed(fn, iters: int) -> float:
    fn()  # warm caches (pattern metadata, slabs) outside the clock
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return time.perf_counter() - t0


def _copies_per_call(fn) -> dict:
    """Per-site bytes one call copies (isolated global-ledger window)."""
    copytrack.reset()
    fn()
    snap = copytrack.ledger().snapshot()
    copytrack.reset()
    return {
        "total_bytes": snap["total_bytes"],
        "wire_bytes": snap["wire_bytes"],
        "sites": {s: v["bytes"] for s, v in snap["sites"].items()},
    }


def _bench(name: str, fn, iters: int, payload_bytes: int) -> dict:
    elapsed = _timed(fn, iters)
    entry = {
        "mb_per_s": payload_bytes * iters / elapsed / 1e6,
        "per_call_us": elapsed / iters * 1e6,
        "payload_bytes": payload_bytes,
        "copies": _copies_per_call(fn),
    }
    print(
        f"{name:28s} {entry['mb_per_s']:9.1f} MB/s  "
        f"{entry['per_call_us']:8.1f} us/call  "
        f"copied {entry['copies']['total_bytes']:>8d} B/field"
    )
    return entry


def main(
    repeats: int = ENCODE_ITERS,
    output: Path | str = DEFAULT_OUTPUT,
    quick: bool = False,
) -> dict:
    encode_iters = max(1, repeats // 10) if quick else repeats
    decode_iters = max(1, encode_iters // 4)
    field = _reference_field()
    payload = serialize_compressed(field)
    payload32 = serialize_compressed(field, precision="float32")
    size, size32 = len(payload), len(payload32)
    m = field.pattern.sample_count
    arena = np.empty(m, dtype=np.float64)

    results = {
        "encode_segments": _bench(
            "encode segments f64", lambda: serialize_segments(field),
            encode_iters, size,
        ),
        "encode_contiguous": _bench(
            "encode contiguous f64", lambda: serialize_compressed(field),
            encode_iters, size,
        ),
        "encode_segments_float32": _bench(
            "encode segments f32",
            lambda: serialize_segments(field, precision="float32"),
            encode_iters, size32,
        ),
        "decode_zero_copy": _bench(
            "decode zero-copy f64", lambda: deserialize_compressed(payload),
            decode_iters, size,
        ),
        "decode_into_arena": _bench(
            "decode into arena", lambda: deserialize_into(payload, arena),
            decode_iters, size,
        ),
        "decode_float32": _bench(
            "decode f32 promote", lambda: deserialize_compressed(payload32),
            decode_iters, size32,
        ),
    }

    # the tentpole invariant, asserted where the numbers are produced
    assert results["encode_segments"]["copies"]["total_bytes"] == 0
    assert results["decode_zero_copy"]["copies"]["total_bytes"] == 0

    report = bench_envelope(
        "serialize",
        n=N,
        k=K,
        repeats=encode_iters,
        results=results,
        rate=RATE,
        sample_count=m,
        payload_bytes=size,
        payload_bytes_float32=size32,
        encode_iters=encode_iters,
        decode_iters=decode_iters,
    )
    out = write_bench(report, output)
    speedup = (
        results["encode_segments"]["mb_per_s"]
        / results["encode_contiguous"]["mb_per_s"]
    )
    print(
        f"\nsegment encode is {speedup:.1f}x the contiguous encoder; "
        f"report written to {out}"
    )
    return report


if __name__ == "__main__":
    parser = bench_argument_parser(
        __doc__,
        default_output=str(DEFAULT_OUTPUT),
        default_repeats=ENCODE_ITERS,
        repeats_help=f"encode iterations (default {ENCODE_ITERS}; decode "
        "runs a quarter of them)",
    )
    args = parser.parse_args()
    main(repeats=args.repeats, output=args.output, quick=args.quick)
