"""Standing-pool dispatch benchmark: warm vs cold job latency.

Measures what the pool buys over spawn-per-job at the reference shape
(n=32, k=8, flat:2, P TCP ranks):

- ``cold_dist_run``    — the launcher path: every run pays process
  spawn, mesh formation, and FFT plan construction;
- ``pool_first_submit`` — the pool's first job: mesh already formed by
  ``connect()``, but plans are still cold (``plan_misses > 0``);
- ``pool_warm_submit`` — resubmissions on the warm mesh: processes,
  transports, and plans all reused (the bar: ``plan_misses == 0`` and a
  median below both colder paths).

Every run is verified bitwise against ``run_serial`` and wire-audited
against Eq 6.  Writes ``BENCH_pool.json`` at the repository root via the
shared :func:`~repro.xpr.store.bench_envelope`, then seeds the
measurements into ``TRAJECTORY.jsonl`` (experiment ``bench-pool``) so
the trajectory store carries the warm-dispatch history; pass
``--no-trajectory`` to skip the seeding (CI artifact-only runs).

Usage::

    PYTHONPATH=src python benchmarks/bench_pool.py \
        [--repeats N] [--output PATH] [--quick] [--no-trajectory]

``--quick`` shrinks to 2 ranks and 2 repeats (same schema).
"""

from __future__ import annotations

import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.dist.launcher import default_spectrum, dist_run
from repro.dist.worker import DistConfig, build_pipeline, composite_field
from repro.pool.pool import RankPool
from repro.xpr.registry import bench_argument_parser
from repro.xpr.store import (
    TrajectoryStore,
    bench_envelope,
    seed_from_bench_files,
    write_bench,
)

N, K, SIGMA, POLICY, REPEATS, SEED = 32, 8, 2.0, "flat:2", 3, 0
RANKS = 4
ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = ROOT / "BENCH_pool.json"
TRAJECTORY = ROOT / "TRAJECTORY.jsonl"


def _check(approx, serial, label):
    if not np.array_equal(approx, serial.approx):
        raise AssertionError(f"{label}: not bitwise identical to run_serial")


def main(
    repeats: int = REPEATS,
    output: Path | str = DEFAULT_OUTPUT,
    quick: bool = False,
    trajectory: Path | str | None = TRAJECTORY,
) -> dict:
    ranks = 2 if quick else RANKS
    repeats = min(repeats, 2) if quick else repeats
    config = DistConfig(
        n=N, k=K, sigma=SIGMA, policy=POLICY, seed=SEED,
        num_ranks=ranks, transport="tcp",
    )
    field = composite_field(N, SEED)
    spectrum = default_spectrum(config)
    serial = build_pipeline(config, spectrum).run_serial(field)

    # -- cold baseline: the spawn-per-job launcher path -------------------
    cold_times = []
    cold_report = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        cold_report = dist_run(config, field=field, spectrum=spectrum)
        cold_times.append(time.perf_counter() - t0)
        _check(cold_report.approx, serial, "cold dist_run")

    # -- the standing pool ------------------------------------------------
    pool = RankPool(f"file://{tempfile.mkdtemp(prefix='bench-pool-')}")
    try:
        t0 = time.perf_counter()
        pool.spawn(ranks)
        pool.connect(ranks, timeout_s=30.0)
        bootstrap_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        first = pool.submit(config, field=field, spectrum=spectrum)
        first_s = time.perf_counter() - t0
        _check(first.approx, serial, "pool first submit")

        warm_times = []
        warm = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            warm = pool.submit(config, field=field, spectrum=spectrum)
            warm_times.append(time.perf_counter() - t0)
            _check(warm.approx, serial, "pool warm submit")
            if not warm.warm or warm.plan_misses:
                raise AssertionError(
                    f"resubmission was not warm: warm={warm.warm} "
                    f"plan_misses={warm.plan_misses}"
                )
    finally:
        pool.down()

    cold_median = statistics.median(cold_times)
    warm_median = statistics.median(warm_times)
    results = {
        "cold_dist_run": {
            "median_s": cold_median,
            "times_s": cold_times,
            "wire_over_model": cold_report.wire_over_model,
            "bitwise_vs_serial": True,
        },
        "pool_first_submit": {
            "median_s": first_s,
            "plan_misses": first.plan_misses,
            "plan_hits": first.plan_hits,
            "wire_over_model": first.wire_over_model,
            "bitwise_vs_serial": True,
        },
        "pool_warm_submit": {
            "median_s": warm_median,
            "times_s": warm_times,
            "plan_misses": warm.plan_misses,
            "plan_hits": warm.plan_hits,
            "wire_over_model": warm.wire_over_model,
            "bitwise_vs_serial": True,
        },
    }
    report = bench_envelope(
        "pool",
        n=N,
        k=K,
        repeats=repeats,
        results=results,
        workers_used=ranks,
        sigma=SIGMA,
        policy=POLICY,
        dispatch={
            "bootstrap_s": bootstrap_s,
            "warm_speedup_vs_cold_dist": cold_median / warm_median,
            "warm_speedup_vs_first_submit": first_s / warm_median,
        },
    )
    out = write_bench(report, output)
    for name in results:
        print(f"{name:18s} median {results[name]['median_s']:6.3f} s")
    print(
        f"\nwarm dispatch {cold_median / warm_median:.2f}x faster than "
        f"cold dist_run ({first_s / warm_median:.2f}x vs first submit), "
        f"warm plan_misses {warm.plan_misses} -> {out.name}"
    )
    if trajectory is not None:
        records = seed_from_bench_files(TrajectoryStore(trajectory), [out])
        print(f"seeded {len(records)} records into {trajectory}")
    return report


if __name__ == "__main__":
    parser = bench_argument_parser(
        __doc__, default_output=str(DEFAULT_OUTPUT), default_repeats=REPEATS
    )
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="write BENCH_pool.json only; skip the TRAJECTORY.jsonl seed",
    )
    args = parser.parse_args()
    main(
        repeats=args.repeats,
        output=args.output,
        quick=args.quick,
        trajectory=None if args.no_trajectory else TRAJECTORY,
    )
