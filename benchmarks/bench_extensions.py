"""Benchmarks for the extension features built beyond the paper's POC:
content-adaptive decomposition (the paper's "irregular partitions" remark),
worker-pool batch processing (§3.1/§5.1), the wire serialization of
compressed fields, and the a-priori error bound (§5.3 future work).
"""

import numpy as np
from conftest import emit

from repro.cluster.device import V100_32GB
from repro.core.adaptive import AdaptiveConvolution
from repro.core.decomposition import DomainDecomposition
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_convolve, reference_subdomain_convolve
from repro.core.local_conv import LocalConvolution
from repro.core.worker import WorkerPool
from repro.kernels.gaussian import GaussianKernel
from repro.octree.error_bounds import pipeline_error_bound
from repro.octree.interpolate import reconstruct_dense
from repro.octree.serialize import deserialize_compressed, serialize_compressed
from repro.util.arrays import l2_relative_error


def test_adaptive_vs_regular_on_sparse_input(benchmark):
    """Content-adaptive decomposition skips zero regions entirely."""
    n = 32
    spec = GaussianKernel(n=n, sigma=1.5).spectrum()
    field = np.zeros((n, n, n))
    field[0:8, 0:8, 0:8] = 1.0  # 1.6% occupancy

    conv = AdaptiveConvolution(
        n, spec, SamplingPolicy.flat_rate(2), k_max=8, batch=256
    )
    res = benchmark(conv.run, field)
    exact = reference_convolve(field, spec)
    err = l2_relative_error(res.approx, exact)
    emit(
        f"adaptive: {len(res.subdomains)} chunk(s), skipped "
        f"{100 * res.skipped_volume / n**3:.1f}% of the volume, err {err:.4f}"
    )
    assert len(res.subdomains) == 1
    assert err < 0.05


def test_worker_pool_batching(benchmark):
    """Multiple chunks batch-processed per worker; makespan scales."""
    n, k = 16, 4
    rng = np.random.default_rng(0)
    spec = GaussianKernel(n=n, sigma=1.2).spectrum()
    d = DomainDecomposition(n, k)
    chunks = [(d.subdomain(i), rng.standard_normal((k, k, k))) for i in range(16)]

    def run():
        pool = WorkerPool(
            4, n, spec, SamplingPolicy.flat_rate(2), V100_32GB, batch=64
        )
        return pool.run(chunks)

    res = benchmark(run)
    emit(
        f"4 workers x {res.total_chunks // 4} chunks each, "
        f"modeled makespan {res.makespan_s * 1e3:.2f} ms"
    )
    assert res.total_chunks == 16


def test_wire_serialization_roundtrip(benchmark):
    n, k = 64, 16
    spec = GaussianKernel(n=n, sigma=2.0).spectrum()
    pol = SamplingPolicy(r_near=2, r_mid=8, r_far=16, min_cell=2)
    cf = LocalConvolution(n, spec, pol, batch=n * n).convolve(
        np.ones((k, k, k)), (24, 24, 24)
    )

    def roundtrip():
        return deserialize_compressed(serialize_compressed(cf))

    back = benchmark(roundtrip)
    payload_mb = len(serialize_compressed(cf)) / 1e6
    emit(
        f"wire payload {payload_mb:.2f} MB vs dense {8 * n**3 / 1e6:.2f} MB "
        f"({8 * n**3 / (payload_mb * 1e6):.1f}x)"
    )
    np.testing.assert_array_equal(back.values, cf.values)
    assert payload_mb * 1e6 < 8 * n**3


def test_apriori_error_bound(benchmark):
    """§5.3 future work: the Taylor bound dominates the measured error."""
    n, k = 32, 8
    kernel = GaussianKernel(n=n, sigma=2.0)
    spec = kernel.spectrum()
    sub = np.ones((k, k, k))
    corner = (12, 12, 12)
    pol = SamplingPolicy.flat_rate(4)
    pattern = pol.pattern_for(n, k, corner)

    bound = benchmark(
        pipeline_error_bound, pattern, kernel.spatial(), float(k**3)
    )
    cf = LocalConvolution(n, spec, pol, batch=256).convolve(
        sub, corner, pattern=pattern
    )
    measured = float(
        np.linalg.norm(
            reconstruct_dense(cf) - reference_subdomain_convolve(sub, corner, spec)
        )
    )
    emit(f"measured L2 error {measured:.3e} <= a-priori bound {bound:.3e} "
         f"(slack {bound / max(measured, 1e-300):.1f}x)")
    assert measured <= bound
