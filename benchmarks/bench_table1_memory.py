"""E1 — Table 1: memory for traditional FFT vs our domain-local FFT.

Regenerates all eight rows of the paper's back-of-envelope table; the
reproduction is exact (same closed-form formulas, GiB units).
"""

from conftest import emit

from repro.analysis.experiments import run_table1_memory


def test_table1_memory(benchmark):
    report = benchmark(run_table1_memory)
    emit(report.render())
    # exact reproduction: every row matches the paper
    assert report.max_ratio_deviation() < 1e-6
    # the headline: ours is below traditional on every configuration
    ours = [r for r in report.rows if r.label.endswith("ours")]
    trad = [r for r in report.rows if r.label.endswith("traditional")]
    for o, t in zip(ours, trad):
        assert o.measured < t.measured
