"""Shared helpers for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark both
times its experiment driver (pytest-benchmark) and prints the
paper-vs-measured comparison table to stdout (``-s`` to see it live;
captured output is shown for failures).
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a report block, flushed, with surrounding whitespace."""
    sys.stdout.write("\n" + text + "\n")
    sys.stdout.flush()
