"""E4 — Table 4: estimated vs actual GPU memory (cuFFT temporaries).

The estimate column reproduces exactly (the reverse-engineered formula
``3 * 16 N^2 k + 2 * 16 N^2 ceil(N/r)`` in GiB); the actual column follows
from the calibrated cuFFT workspace factor (~1.59x + 0.3 GiB context)
within ~7% on every row.  A second benchmark validates the model's *shape*
against real allocations: running the actual pipeline at laptop scale under
the byte-exact tracker.
"""

import numpy as np
from conftest import emit

from repro.analysis.experiments import run_table4_memory
from repro.cluster.cufft_model import CufftWorkspaceModel
from repro.cluster.memory import MemoryTracker
from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.kernels.gaussian import GaussianKernel


def test_table4_model(benchmark):
    report = benchmark(run_table4_memory)
    emit(report.render())
    assert report.max_ratio_deviation() < 0.07
    assert report.monotonic_agreement()


def test_table4_real_allocations(benchmark):
    """Peak tracked bytes of the real pipeline vs the model's algorithmic
    estimate at N=64: the tracker charges the same buffers the estimate
    counts, so the two agree within the batch-buffer margin."""
    n, k, r = 64, 16, 8

    def run():
        mt = MemoryTracker()
        spec = GaussianKernel(n=n, sigma=2.0).spectrum()
        lc = LocalConvolution(
            n, spec, SamplingPolicy.flat_rate(r), batch=n, memory=mt
        )
        lc.convolve(np.ones((k, k, k)), ((n - k) // 2,) * 3)
        return mt.peak_bytes

    peak = benchmark(run)
    slab = 16 * n * n * k
    dense_spectrum_ws = 2 * 16 * n**3  # traditional in-flight spectrum + temp
    emit(
        f"N={n} k={k} r={r}: tracked peak {peak / 1e6:.1f} MB "
        f"(slab {slab / 1e6:.1f} MB, dense-conv working set "
        f"{dense_spectrum_ws / 1e6:.1f} MB)"
    )
    assert slab <= peak < dense_spectrum_ws
