"""Ablation benchmarks for the design choices DESIGN.md calls out.

- Interpolation order: trilinear vs nearest reconstruction.
- FFT backend: the from-scratch native transforms vs numpy.fft (identical
  results; numpy faster — the ratio is reported).
- heFFTe-style overlap vs plain MPI FFT scaling (§2.1's "scales further,
  still saturates").
"""

import numpy as np
from conftest import emit

from repro.analysis.tables import format_table
from repro.baselines.heffte_like import scaling_curve
from repro.cluster.device import XEON_GOLD_6148
from repro.cluster.network import Link
from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_subdomain_convolve
from repro.fft.fftn import fft3
from repro.kernels.gaussian import GaussianKernel
from repro.octree.interpolate import reconstruct_dense
from repro.util.arrays import l2_relative_error


def test_interpolation_order_ablation(benchmark):
    n, k = 64, 16
    spec = GaussianKernel(n=n, sigma=2.0).spectrum()
    sub = np.ones((k, k, k))
    pol = SamplingPolicy(r_near=2, r_mid=8, r_far=16, min_cell=2)
    lc = LocalConvolution(n, spec, pol, batch=n * n)
    cf = lc.convolve(sub, (24, 24, 24))
    exact = reference_subdomain_convolve(sub, (24, 24, 24), spec)

    def both():
        lin = l2_relative_error(reconstruct_dense(cf, method="linear"), exact)
        near = l2_relative_error(reconstruct_dense(cf, method="nearest"), exact)
        return lin, near

    lin, near = benchmark(both)
    emit(f"reconstruction error: trilinear {lin:.4f} vs nearest {near:.4f}")
    assert lin < near
    assert lin <= 0.03


def test_backend_ablation(benchmark, rng=np.random.default_rng(1)):
    """Native transforms agree with numpy to 1e-9; report the speed ratio."""
    import time

    x = rng.standard_normal((32, 32, 32))

    def run_native():
        return fft3(x, backend="native")

    native = benchmark(run_native)
    start = time.perf_counter()
    ref = fft3(x, backend="numpy")
    numpy_time = time.perf_counter() - start
    np.testing.assert_allclose(native, ref, atol=1e-8)
    emit(f"native backend == numpy backend (numpy single run: {numpy_time * 1e3:.2f} ms)")


def test_heffte_scaling_ablation(benchmark):
    rows = benchmark(
        scaling_curve, 1024, [8, 64, 512, 4096, 32768], XEON_GOLD_6148, Link()
    )
    emit(
        format_table(
            ["P", "MPI FFT (s)", "heFFTe-like (s)"],
            rows,
            title="Distributed FFT scaling (per-transform)",
        )
    )
    # heFFTe never slower, but both flatten: the last doubling of P buys
    # less than 1.5x on either curve (communication-bound regime).
    _, mpi_a, hef_a = rows[-2]
    _, mpi_b, hef_b = rows[-1]
    assert hef_b <= mpi_b
    assert mpi_a / mpi_b < 4  # far from the ideal 8x for 8x workers
