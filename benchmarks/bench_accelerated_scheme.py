"""Ablation: basic Moulinec-Suquet vs Eyre-Milton accelerated scheme.

The paper's MASSIF loop is the basic scheme, O(contrast) iterations; the
accelerated variant cuts this to O(sqrt(contrast)) while converging to the
same fields.  Each saved iteration saves one full round of the 3D
convolutions the paper works so hard to cheapen, so acceleration and
low-communication convolution compose multiplicatively.
"""

import numpy as np
from conftest import emit

from repro.analysis.tables import format_table
from repro.kernels.green_massif import LameParameters
from repro.massif import (
    EyreMiltonSolver,
    MassifSolver,
    StiffnessField,
    isotropic_stiffness,
    reference_lame_eyre_milton,
    sphere_inclusion,
)


def _composite(contrast, n=16):
    c0 = isotropic_stiffness(LameParameters.from_young_poisson(1.0, 0.3))
    c1 = isotropic_stiffness(LameParameters.from_young_poisson(contrast, 0.3))
    return StiffnessField(sphere_inclusion(n, radius=5), [c0, c1])


def test_iterations_vs_contrast(benchmark):
    macro = np.zeros((3, 3))
    macro[0, 0] = 0.01

    def sweep():
        rows = []
        for contrast in (5.0, 20.0, 100.0, 1000.0):
            sf = _composite(contrast)
            basic = MassifSolver(sf, tol=1e-4, max_iter=20000).solve(macro)
            em = EyreMiltonSolver(
                sf,
                reference=reference_lame_eyre_milton(sf),
                tol=1e-4,
                max_iter=20000,
            ).solve(macro)
            rows.append(
                (contrast, basic.iterations, em.iterations,
                 basic.iterations / max(em.iterations, 1))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["contrast", "basic iters", "Eyre-Milton iters", "speedup"],
            rows,
            title="MASSIF iteration counts vs phase contrast (tol 1e-4)",
        )
    )
    speedups = [r[3] for r in rows]
    assert speedups[-1] > speedups[0]  # acceleration grows with contrast
    assert speedups[-1] > 5  # order-of-magnitude class gains at contrast 1000
