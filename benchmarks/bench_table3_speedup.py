"""E3 — Table 3: runtime and speedup, our GPU pipeline vs CPU FFTW.

Two halves:

1. *Modeled* runtimes at the paper's scale (N up to 1024) on the
   calibrated device models — the shape target is the speedup growing from
   ~4x at N=128 to ~24x at N=1024.
2. *Measured* approximation error at laptop scale with the paper's banded
   sampling schedule — the shape target is the paper's <= 3% band, plus
   real wall-clock timing of the Python pipeline itself.
"""

import numpy as np
from conftest import emit

from repro.analysis.experiments import measure_table3_error, run_table3_speedup
from repro.analysis.tables import format_table
from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.kernels.gaussian import GaussianKernel


def test_table3_modeled_speedups(benchmark):
    rows, report = benchmark(run_table3_speedup)
    emit(report.render())
    emit(
        format_table(
            ["N", "k", "r", "ours (ms)", "FFTW (ms)", "speedup"],
            [[r.n, r.k, r.r, r.ours_ms, r.fftw_ms, r.speedup] for r in rows],
            title="Table 3 (modeled)",
        )
    )
    speedups = [r.speedup for r in rows]
    assert speedups[0] < speedups[-1]  # grows with N
    assert 3 < speedups[0] < 6  # ~4x at N=128
    assert 18 < speedups[-1] < 32  # ~24x at N=1024
    assert report.max_ratio_deviation() < 0.5


def test_table3_measured_error(benchmark):
    err = benchmark(measure_table3_error, n=128, k=32, r=16, sigma=2.0)
    emit(f"measured L2 error, N=128 k=32 banded r_far=16: {err:.4f} (paper: <= 0.03)")
    assert err <= 0.03


def test_table3_pipeline_walltime(benchmark, rng=np.random.default_rng(0)):
    """Real wall-clock of one compressed sub-domain convolution (N=64)."""
    n, k = 64, 16
    spec = GaussianKernel(n=n, sigma=2.0).spectrum()
    sub = 1.0 + 0.1 * rng.standard_normal((k, k, k))
    policy = SamplingPolicy(r_near=2, r_mid=8, r_far=16, min_cell=2)
    lc = LocalConvolution(n, spec, policy, batch=n * n)

    result = benchmark(lc.convolve, sub, ((n - k) // 2,) * 3)
    emit(
        f"N={n} k={k}: {result.pattern.sample_count} samples, "
        f"{result.nbytes / 1e6:.2f} MB compressed "
        f"({8 * n**3 / result.nbytes:.1f}x smaller than dense)"
    )
    assert result.pattern.sample_count < n**3 / 4
