"""E8 — §5.4 batch parameter B: speedup from larger pencil batches.

Paper observations: doubling B gives +19.9% at N=256 (512 -> 1024), +7.35%
at N=1024 (1024 -> 2048), and 5-7% at N=2048 — "for smaller sizes, the
choice of B matters more".  The launch-overhead model reproduces the
*shape* (gains shrink with N); the magnitude at N=2048 under-shoots, which
EXPERIMENTS.md records as a known model deviation.  A second benchmark
measures the real effect of B on the Python pipeline (it only re-schedules
work, so results are bit-identical — verified — while wall time varies).
"""

import numpy as np
from conftest import emit

from repro.analysis.experiments import run_batch_sweep
from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.kernels.gaussian import GaussianKernel


def test_batch_sweep_model(benchmark):
    report = benchmark(run_batch_sweep)
    emit(report.render())
    gains = [r.measured for r in report.rows]
    assert gains[0] > gains[1] > gains[2]  # the paper's shape
    assert gains[0] > 10  # double-digit gain at N=256


def test_batch_result_invariance(benchmark):
    """B is pure scheduling: any batch size gives the identical result."""
    n, k = 32, 8
    spec = GaussianKernel(n=n, sigma=1.5).spectrum()
    sub = np.ones((k, k, k))
    pol = SamplingPolicy.flat_rate(2)

    def run_all():
        outs = []
        for batch in (16, 128, 1024):
            lc = LocalConvolution(n, spec, pol, batch=batch)
            outs.append(lc.convolve(sub, (8, 8, 8)).values)
        return outs

    outs = benchmark(run_all)
    np.testing.assert_allclose(outs[0], outs[1], atol=1e-12)
    np.testing.assert_allclose(outs[0], outs[2], atol=1e-12)
    emit("B in {16, 128, 1024}: identical results (max |diff| < 1e-12)")
