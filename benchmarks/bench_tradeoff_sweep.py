"""E12 — §5.3 trade-off surface: accuracy vs downsampling vs compute time.

"In reality, the accuracy can be tuned to the needs of the application in
terms of trade-offs between compute time, downsampling, accuracy and
scalability."  This bench measures the trade-off on the real pipeline and
extracts the Pareto front in (error, samples).
"""

from conftest import emit

from repro.analysis.sweeps import error_compression_sweep, pareto_front
from repro.analysis.tables import format_table


def test_tradeoff_sweep(benchmark):
    points = benchmark(
        error_compression_sweep, n=48 if False else 64, k=16, sigma=2.0,
        r_values=(2, 4, 8, 16),
    )
    rows = [
        [
            p.r_far,
            "flat" if p.flat else "banded",
            p.samples,
            p.compression_ratio,
            p.l2_error,
            p.modeled_time_s * 1e3,
        ]
        for p in points
    ]
    emit(
        format_table(
            ["r_far", "schedule", "samples", "compression", "L2 error", "time (ms, modeled)"],
            rows,
            title="Accuracy / compression / time trade-off (N=64, k=16)",
        )
    )
    front = pareto_front(points)
    emit(
        format_table(
            ["r_far", "schedule", "samples", "L2 error"],
            [[p.r_far, "flat" if p.flat else "banded", p.samples, p.l2_error]
             for p in front],
            title="Pareto front (error vs samples)",
        )
    )

    flat = {p.r_far: p for p in points if p.flat}
    banded = {p.r_far: p for p in points if not p.flat}
    # flat error grows with r; banded stays within the paper's band
    assert flat[2].l2_error <= flat[16].l2_error
    assert banded[16].l2_error <= 0.03
    # some banded point dominates a flat point (the schedule earns its keep)
    assert any(not p.flat for p in front)
