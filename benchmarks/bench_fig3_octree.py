"""E6 — Figure 3: the octree sampling pattern for a 32^3 sub-domain in a
128^3 grid, plus the banded-vs-uniform ablation.

Shape targets: dense samples on the sub-domain, rate-2 band around it,
sparser rates further out, dense re-sampling at the grid edges; metadata
is 5 int32 per cell; and the banded schedule beats a uniform schedule of
equal sample budget on reconstruction error.
"""

import numpy as np
from conftest import emit

from repro.analysis.experiments import measure_table3_error, run_fig3_octree
from repro.analysis.tables import format_table


def test_fig3_pattern(benchmark):
    res = benchmark(run_fig3_octree)
    emit(
        format_table(
            ["rate", "samples"],
            sorted(res.rate_histogram.items()),
            title=(
                f"Figure 3 pattern: {res.num_cells} cells, "
                f"{res.sample_count} samples, {res.compression_ratio:.1f}x "
                f"compression, {res.metadata_bytes} B metadata"
            ),
        )
    )
    emit("central z-slice occupancy (64x64 downsample):\n" + res.ascii_slice)
    hist = res.rate_histogram
    assert 1 in hist  # dense sub-domain
    assert hist[1] >= 32**3
    assert 2 in hist  # the k/2 near band
    assert max(hist) >= 8  # sparse far field
    assert res.compression_ratio > 8
    assert res.metadata_bytes == 20 * res.num_cells


def test_fig3_banded_beats_flat_ablation(benchmark):
    """Ablation: the paper's banded schedule vs a flat exterior rate."""

    def both():
        banded = measure_table3_error(n=64, k=16, r=8, sigma=2.0)
        flat = measure_table3_error(n=64, k=16, r=8, sigma=2.0, flat=True)
        return banded, flat

    banded, flat = benchmark(both)
    emit(f"L2 error N=64 k=16 r=8: banded {banded:.4f} vs flat {flat:.4f}")
    assert banded < flat
    assert banded <= 0.03
