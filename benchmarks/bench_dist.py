"""Real-transport dist-run benchmark: wall time + wire bytes vs Eq 6.

Standalone script (not a pytest-benchmark module): runs the full SPMD
pipeline at n=32, k=8, flat:2 over P in {1, 2, 4} ranks on both real
transports —

- ``local`` — loopback queues, one thread per rank (transport overhead
  floor);
- ``tcp``   — one OS process per rank, length-prefixed frames over
  localhost sockets (the real wire);

verifies every run bitwise against ``run_serial``, takes the median of 3
runs each, and writes ``BENCH_dist.json`` at the repository root with the
measured exchange wire bytes, the exact Eq 6 value-byte prediction, and
their ratio (the acceptance bar is ratio <= 1.05 at this configuration).

Zero-copy accounting columns: every configuration records the per-rank
:class:`~repro.dist.copytrack.CopyLedger` totals (``copied_wire_bytes``
must be 0 on the TCP transport for float64 — the data plane's counted
invariant; loopback rank threads share one process ledger, so their
totals overlap), and a ``serialization`` section reports the codec's
encode throughput and bytes-copied-per-field at this shape (the deep
version of that measurement lives in ``bench_serialize.py``).

With ``--overlap`` the sweep additionally runs every configuration in
streamed (overlap) mode — an on/off A/B — and records per-config
``exchange_hidden_s`` / ``exchange_send_s`` / ``hidden_frac``: the wire
send time that completed while compute was still running, the stream's
total wire send time, and their ratio (median over repeats).  A headline
A/B section then reruns 4-rank barrier vs streamed on a *dense* field
(every sub-domain active, so every rank streams a full chunk share).
The acceptance bar is ``hidden_frac >= 0.25`` there at 4 TCP ranks: at
least a quarter of the exchange's send wall-time hides behind compute.

Usage::

    PYTHONPATH=src python benchmarks/bench_dist.py \
        [--overlap] [--repeats N] [--output PATH] [--quick]

``--quick`` shrinks the sweep to the local transport at P in {1, 2}
(same schema, no TCP process spawns) for smoke runs.
"""

from __future__ import annotations

import statistics
import time
from pathlib import Path

import numpy as np

from repro.dist.launcher import default_spectrum, dist_run, simulated_crosscheck
from repro.dist.worker import DistConfig, build_pipeline, composite_field
from repro.octree.compress import CompressedField
from repro.octree.sampling import build_flat_pattern
from repro.octree.serialize import serialize_compressed, serialize_segments
from repro.util import copytrack
from repro.xpr.registry import bench_argument_parser
from repro.xpr.store import bench_envelope, write_bench

N, K, SIGMA, POLICY, REPEATS, SEED = 32, 8, 2.0, "flat:2", 3, 0
RANK_COUNTS = (1, 2, 4)
TRANSPORTS = ("local", "tcp")
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dist.json"


def _run_config(config, field, spectrum, serial, repeats=REPEATS):
    times, reports = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = dist_run(config, field=field, spectrum=spectrum)
        times.append(time.perf_counter() - t0)
        reports.append(report)
        if not np.array_equal(report.approx, serial.approx):
            raise AssertionError(
                f"{config.transport} P={config.num_ranks} "
                f"overlap={config.overlap}: not bitwise identical to "
                "run_serial"
            )
    return statistics.median(times), times, reports


def _hidden_stats(reports) -> dict:
    """Job-wide overlap accounting, median over repeats by hidden_frac.

    Per run: sum the per-rank send time the stream completed before that
    rank's compute ended (hidden) and the stream's total send time; the
    per-run fraction is hidden/total.  The median run guards against the
    occasional scheduling outlier where the pump thread starves.
    """
    runs = []
    for report in reports:
        ranks = report.rank_results.values()
        hidden = sum(r.exchange_hidden_s for r in ranks)
        send = sum(r.exchange_send_s for r in ranks)
        runs.append(
            {
                "exchange_hidden_s": hidden,
                "exchange_send_s": send,
                "hidden_frac": hidden / send if send else 0.0,
            }
        )
    runs.sort(key=lambda s: s["hidden_frac"])
    median = dict(runs[len(runs) // 2])
    median["hidden_frac_runs"] = [s["hidden_frac"] for s in runs]
    return median


def _copy_columns(report) -> dict:
    """Summed per-rank copy-ledger columns for one run's report."""
    ranks = report.rank_results.values()
    return {
        "copied_wire_bytes": sum(
            r.copies.get("wire_bytes", 0) for r in ranks
        ),
        "copied_total_bytes": sum(
            r.copies.get("total_bytes", 0) for r in ranks
        ),
    }


def _serialization_section() -> dict:
    """Codec throughput + bytes-copied-per-field at the bench shape."""
    pattern = build_flat_pattern(N, K, (8, 8, 8), r=2)
    rng = np.random.default_rng(SEED)
    field = CompressedField.from_dense(
        rng.standard_normal((N, N, N)), pattern
    )
    size = len(serialize_compressed(field))
    iters = 500
    section = {"payload_bytes": size}
    for name, fn in (
        ("segments", lambda: serialize_segments(field)),
        ("contiguous", lambda: serialize_compressed(field)),
    ):
        fn()  # warm the pattern's metadata cache outside the clock
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        elapsed = time.perf_counter() - t0
        copytrack.reset()
        fn()
        copied = copytrack.ledger().snapshot()["total_bytes"]
        copytrack.reset()
        section[name] = {
            "encode_mb_per_s": size * iters / elapsed / 1e6,
            "bytes_copied_per_field": copied,
        }
    return section


def main(
    overlap: bool = False,
    repeats: int = REPEATS,
    output: Path | str = DEFAULT_OUTPUT,
    quick: bool = False,
) -> dict:
    transports = ("local",) if quick else TRANSPORTS
    rank_counts = (1, 2) if quick else RANK_COUNTS
    headline = "local_p2" if quick else "tcp_p4"
    base = DistConfig(n=N, k=K, sigma=SIGMA, policy=POLICY, seed=SEED)
    field = composite_field(N, SEED)
    spectrum = default_spectrum(base)
    serial = build_pipeline(base, spectrum).run_serial(field)

    modes = (False, True) if overlap else (False,)
    results = {}
    for transport in transports:
        for ranks in rank_counts:
            for streamed in modes:
                config = DistConfig(
                    n=N,
                    k=K,
                    sigma=SIGMA,
                    policy=POLICY,
                    seed=SEED,
                    num_ranks=ranks,
                    transport=transport,
                    overlap=streamed,
                )
                median, times, reports = _run_config(
                    config, field, spectrum, serial, repeats
                )
                report = reports[-1]
                name = f"{transport}_p{ranks}" + ("_overlap" if streamed else "")
                results[name] = {
                    "median_s": median,
                    "times_s": times,
                    "exchange_wire_bytes": report.exchange_wire_bytes,
                    "predicted_value_bytes": report.predicted_value_bytes,
                    "naive_eq6_bytes": report.naive_eq6_bytes,
                    "wire_over_model": report.wire_over_model,
                    "max_compute_s": report.max_compute_s,
                    "max_exchange_s": report.max_exchange_s,
                    "bitwise_vs_serial": True,
                    **_copy_columns(report),
                }
                extra = ""
                if streamed:
                    stats = _hidden_stats(reports)
                    results[name].update(stats)
                    extra = f"  hidden {stats['hidden_frac']:.2f}"
                print(
                    f"{name:18s} median {median:6.3f} s  "
                    f"wire {report.exchange_wire_bytes:>9d} B  "
                    f"model {report.predicted_value_bytes:>9d} B  "
                    f"ratio {report.wire_over_model:.4f}{extra}"
                )

    sim_ranks = max(rank_counts)
    sim = simulated_crosscheck(
        DistConfig(
            n=N, k=K, sigma=SIGMA, policy=POLICY, seed=SEED,
            num_ranks=sim_ranks,
        ),
        field=field,
        spectrum=spectrum,
    )

    top = max(rank_counts)
    report = bench_envelope(
        "dist",
        n=N,
        k=K,
        repeats=repeats,
        results=results,
        workers_used=top,
        sigma=SIGMA,
        policy=POLICY,
        serialization=_serialization_section(),
        speedup={
            f"{t}_p{top}_vs_p1": results[f"{t}_p1"]["median_s"]
            / results[f"{t}_p{top}"]["median_s"]
            for t in transports
        },
        crosscheck={
            "simulated_allgather_bytes": sim["allgather_bytes"],
            "simulated_allgather_rounds": sim["allgather_rounds"],
            f"predicted_value_bytes_p{sim_ranks}": results[headline][
                "predicted_value_bytes"
            ],
        },
    )
    if overlap:
        # Headline A/B on a dense balanced field: every rank streams a
        # full 16-chunk share — the load the overlap path is built for.
        # (The composite-field sweep above stays informational: 56 of its
        # 64 sub-domains are zero, so half the ranks have nothing to
        # stream and job-wide hiding there is a scheduling lottery.)
        rng = np.random.default_rng(SEED)
        dense = rng.standard_normal((N, N, N))
        dense_serial = build_pipeline(base, spectrum).run_serial(dense)
        section = {
            "field": "dense standard-normal (all sub-domains active)",
            "window": DistConfig(n=N, k=K).window,
            "hidden_frac_bar": 0.25,
        }
        for transport in transports:
            kwargs = dict(
                n=N,
                k=K,
                sigma=SIGMA,
                policy=POLICY,
                seed=SEED,
                num_ranks=top,
                transport=transport,
            )
            med_b, _, _ = _run_config(
                DistConfig(**kwargs), dense, spectrum, dense_serial, repeats
            )
            med_s, _, reports_s = _run_config(
                DistConfig(overlap=True, **kwargs),
                dense,
                spectrum,
                dense_serial,
                repeats,
            )
            section[f"{transport}_p{top}"] = {
                "barrier_median_s": med_b,
                "overlap_median_s": med_s,
                **_hidden_stats(reports_s),
            }
        report["overlap"] = section
    out = write_bench(report, output)
    ratio = results[headline]["wire_over_model"]
    print(
        f"\n{headline} wire/model {ratio:.4f} (bar: <= 1.05), "
        f"sim allgather == model: "
        f"{sim['allgather_bytes'] == results[headline]['predicted_value_bytes']}"
        f" -> {out.name}"
    )
    if overlap:
        frac = report["overlap"][headline]["hidden_frac"]
        print(
            f"{headline} streamed exchange (dense field): {frac:.1%} of "
            f"send wall-time hidden behind compute (bar: >= 25%)"
        )
        if not quick and frac < 0.25:
            raise AssertionError(
                f"overlap bar missed: hidden_frac {frac:.3f} < 0.25"
            )
    return report


if __name__ == "__main__":
    parser = bench_argument_parser(
        __doc__, default_output=str(DEFAULT_OUTPUT), default_repeats=REPEATS
    )
    parser.add_argument(
        "--overlap",
        action="store_true",
        help="also run every configuration in streamed (overlap) mode "
        "and record exchange-hidden-time A/B numbers",
    )
    args = parser.parse_args()
    main(
        overlap=args.overlap,
        repeats=args.repeats,
        output=args.output,
        quick=args.quick,
    )
