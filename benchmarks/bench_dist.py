"""Real-transport dist-run benchmark: wall time + wire bytes vs Eq 6.

Standalone script (not a pytest-benchmark module): runs the full SPMD
pipeline at n=32, k=8, flat:2 over P in {1, 2, 4} ranks on both real
transports —

- ``local`` — loopback queues, one thread per rank (transport overhead
  floor);
- ``tcp``   — one OS process per rank, length-prefixed frames over
  localhost sockets (the real wire);

verifies every run bitwise against ``run_serial``, takes the median of 3
runs each, and writes ``BENCH_dist.json`` at the repository root with the
measured exchange wire bytes, the exact Eq 6 value-byte prediction, and
their ratio (the acceptance bar is ratio <= 1.05 at this configuration).

Usage::

    PYTHONPATH=src python benchmarks/bench_dist.py
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from pathlib import Path

import numpy as np

from repro.dist.launcher import default_spectrum, dist_run, simulated_crosscheck
from repro.dist.worker import DistConfig, build_pipeline, composite_field

N, K, SIGMA, POLICY, REPEATS, SEED = 32, 8, 2.0, "flat:2", 3, 0
RANK_COUNTS = (1, 2, 4)
TRANSPORTS = ("local", "tcp")


def _run_config(config, field, spectrum, serial):
    times = []
    report = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        report = dist_run(config, field=field, spectrum=spectrum)
        times.append(time.perf_counter() - t0)
        if not np.array_equal(report.approx, serial.approx):
            raise AssertionError(
                f"{config.transport} P={config.num_ranks}: "
                "not bitwise identical to run_serial"
            )
    return statistics.median(times), times, report


def main() -> dict:
    base = DistConfig(n=N, k=K, sigma=SIGMA, policy=POLICY, seed=SEED)
    field = composite_field(N, SEED)
    spectrum = default_spectrum(base)
    serial = build_pipeline(base, spectrum).run_serial(field)

    results = {}
    for transport in TRANSPORTS:
        for ranks in RANK_COUNTS:
            config = DistConfig(
                n=N,
                k=K,
                sigma=SIGMA,
                policy=POLICY,
                seed=SEED,
                num_ranks=ranks,
                transport=transport,
            )
            median, times, report = _run_config(config, field, spectrum, serial)
            name = f"{transport}_p{ranks}"
            results[name] = {
                "median_s": median,
                "times_s": times,
                "exchange_wire_bytes": report.exchange_wire_bytes,
                "predicted_value_bytes": report.predicted_value_bytes,
                "naive_eq6_bytes": report.naive_eq6_bytes,
                "wire_over_model": report.wire_over_model,
                "max_compute_s": report.max_compute_s,
                "max_exchange_s": report.max_exchange_s,
                "bitwise_vs_serial": True,
            }
            print(
                f"{name:10s} median {median:6.3f} s  "
                f"wire {report.exchange_wire_bytes:>9d} B  "
                f"model {report.predicted_value_bytes:>9d} B  "
                f"ratio {report.wire_over_model:.4f}"
            )

    sim = simulated_crosscheck(
        DistConfig(
            n=N, k=K, sigma=SIGMA, policy=POLICY, seed=SEED, num_ranks=4
        ),
        field=field,
        spectrum=spectrum,
    )

    # Shared bench schema (same top-level keys as BENCH_pipeline.json /
    # BENCH_serve.json) so files are machine-comparable.
    report = {
        "bench": "dist",
        "n": N,
        "k": K,
        "sigma": SIGMA,
        "repeats": REPEATS,
        "policy": POLICY,
        "cpu_count": os.cpu_count(),
        "workers_used": max(RANK_COUNTS),
        "python": platform.python_version(),
        "results": results,
        "speedup": {
            "tcp_p4_vs_p1": results["tcp_p1"]["median_s"]
            / results["tcp_p4"]["median_s"],
            "local_p4_vs_p1": results["local_p1"]["median_s"]
            / results["local_p4"]["median_s"],
        },
        "crosscheck": {
            "simulated_allgather_bytes": sim["allgather_bytes"],
            "simulated_allgather_rounds": sim["allgather_rounds"],
            "predicted_value_bytes_p4": results["tcp_p4"][
                "predicted_value_bytes"
            ],
        },
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_dist.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    ratio = results["tcp_p4"]["wire_over_model"]
    print(
        f"\ntcp 4-rank wire/model {ratio:.4f} (bar: <= 1.05), "
        f"sim allgather == model: "
        f"{sim['allgather_bytes'] == results['tcp_p4']['predicted_value_bytes']}"
        f" -> {out.name}"
    )
    return report


if __name__ == "__main__":
    main()
