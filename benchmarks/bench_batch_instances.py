"""§5.1 batch processing: many small convolution instances on one device.

"For smaller 3D grids, the method retains its advantage by batch
processing multiple 3D convolutions on a GPU, optimizing cluster usage
with fewer resources."  Measures the shared-state amortization of
:class:`~repro.core.batch.BatchConvolver` and the instances-per-device
capacity argument at the paper's 256^3 size.
"""

import numpy as np
from conftest import emit

from repro.cluster.device import V100_16GB
from repro.core.batch import BatchConvolver
from repro.core.policy import SamplingPolicy
from repro.kernels.gaussian import GaussianKernel


def test_batch_amortization(benchmark, rng=np.random.default_rng(0)):
    n, k = 32, 8
    spec = GaussianKernel(n=n, sigma=1.5).spectrum()
    fields = []
    for _ in range(4):
        f = np.zeros((n, n, n))
        f[8:24, 8:24, 8:24] = rng.standard_normal((16, 16, 16))
        fields.append(f)
    conv = BatchConvolver(n, k, spec, SamplingPolicy.flat_rate(2), batch=512)

    res = benchmark(conv.run, fields)
    emit(
        f"{len(fields)} instances, {res.patterns_built} patterns built "
        f"(shared across instances), {res.total_samples} total samples"
    )
    assert res.patterns_built <= (n // k) ** 3
    assert len(res.results) == len(fields)


def test_instances_per_gpu_at_256(benchmark):
    """The cluster-usage claim at the paper's 'smaller grid' size."""
    n, k = 256, 32

    def capacity():
        conv = BatchConvolver(
            n, k, lambda ix, iy: np.ones((len(ix), n)),
            SamplingPolicy.flat_rate(8),
        )
        ours = conv.instances_per_device(V100_16GB.memory_bytes)
        dense = V100_16GB.memory_bytes // (2 * 16 * n**3)
        return ours, dense

    ours, dense = benchmark(capacity)
    emit(
        f"concurrent 256^3 instances on one V100-16GB: ours {ours}, "
        f"dense method {dense} ({ours / max(dense, 1):.1f}x more)"
    )
    assert ours > dense
