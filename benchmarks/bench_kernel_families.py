"""E14 — kernel-family applicability: what actually governs the error.

The paper argues the method extends to "similar differential equation
solvers" because their Green's functions decay.  Measuring across the
canonical families (Gaussian sharp/smooth, Yukawa, Poisson) at one
sampling budget shows TWO axes:

- decay rate orders the *support radius* (how aggressively the far field
  compresses) exactly as the paper assumes;
- at a fixed budget, the error is governed by result smoothness at the
  sampling scale: the smooth 1/r Poisson tail reconstructs *better* than
  a sharp Gaussian's near shell, despite decaying far more slowly — a
  reproduction finding recorded in EXPERIMENTS.md that refines the
  paper's heuristic (sharp kernels need a dense near band; slow-decaying
  smooth kernels tolerate sparse sampling but not spatial truncation).
"""

from conftest import emit

from repro.analysis.kernel_study import kernel_family_study
from repro.analysis.tables import format_table


def test_kernel_family_axes(benchmark):
    rows = benchmark(kernel_family_study)
    emit(
        format_table(
            ["kernel", "decay exponent", "support radius", "L2 error", "compression"],
            [
                [r.name, r.decay_exponent, r.support_radius, r.l2_error,
                 r.compression_ratio]
                for r in rows
            ],
            title="Kernel families at a shared sampling budget (N=32, k=8)",
        )
    )
    by = {r.family: r for r in rows}

    # Axis 1 (decay/compression): support radius orders by decay class.
    assert by["gaussian-sharp"].support_radius < by["yukawa"].support_radius
    assert by["yukawa"].support_radius < by["poisson"].support_radius
    assert by["gaussian-sharp"].decay_exponent > by["poisson"].decay_exponent

    # Axis 2 (smoothness/interpolation): smoother results reconstruct
    # better at the same budget — across families AND within one family.
    assert by["gaussian-smooth"].l2_error < by["gaussian-sharp"].l2_error
    assert by["poisson"].l2_error < by["gaussian-sharp"].l2_error

    # Applicability: every Green's-function-like kernel stays within a
    # usable band at this modest budget.
    assert all(r.l2_error < 0.06 for r in rows)
