"""E13 — multi-node deployment: strong scaling of the full pipeline.

The paper's §4 defers multi-node deployment to future work; this benchmark
runs it on the simulated cluster and makes the trade explicit:

- **scaling shape**: our pipeline is embarrassingly parallel (chunks per
  rank, one sparse exchange) and keeps near-perfect efficiency to
  thousands of ranks, while the traditional convolution's all-to-alls
  erode its efficiency (alpha-dominated at scale);
- **feasibility**: at N = 2048 a dense convolution does not fit a single
  32 GB GPU at all (the Table 2 / §5.1 headline) — ours runs at P = 1;
- **the price**: the method performs ~2(N/k)^3/3 dense-transform
  equivalents of compute, the honest other side of removing the
  communication (recorded in EXPERIMENTS.md).
"""

import numpy as np
from conftest import emit

from repro.analysis.tables import format_table
from repro.cluster.device import V100_32GB
from repro.core.distributed_runner import (
    DistributedLowCommConvolution,
    compute_amplification,
    min_feasible_ranks_traditional,
    parallel_efficiency,
    strong_scaling_curve,
)
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_convolve
from repro.kernels.gaussian import GaussianKernel
from repro.util.arrays import l2_relative_error


def test_strong_scaling_curve(benchmark):
    p_values = [1, 8, 64, 512, 4096]
    points = benchmark(strong_scaling_curve, 2048, 128, 16, p_values)
    emit(
        format_table(
            ["P", "ours (s)", "traditional (s)", "t*P ours", "t*P trad"],
            [
                [p.p, p.t_ours_s, p.t_traditional_s,
                 p.t_ours_s * p.p, p.t_traditional_s * p.p]
                for p in points
            ],
            title="Strong scaling, N=2048, k=128 (modeled)",
        )
    )
    eff_ours, eff_trad = parallel_efficiency(points)
    amp = compute_amplification(2048, 128)
    emit(
        f"parallel efficiency across the sweep: ours {eff_ours:.2f}, "
        f"traditional {eff_trad:.2f}; compute amplification ~{amp:.0f}x "
        f"dense-transform equivalents"
    )
    # ours: near-perfect strong scaling (no saturation)
    assert eff_ours > 0.9
    # traditional: all-to-alls erode efficiency at scale
    assert eff_trad < eff_ours
    # the price is real and reported
    assert amp > 100


def test_feasibility_headline(benchmark):
    min_p = benchmark(min_feasible_ranks_traditional, 2048, V100_32GB)
    emit(
        f"N=2048 dense convolution needs >= {min_p} x V100-32GB; "
        "our pipeline runs at P=1 (Table 2)"
    )
    assert min_p >= 8  # a whole node of GPUs vs our single one


def test_executed_multinode_run(benchmark):
    """Small-scale end-to-end run on the simulated cluster: correct result,
    zero all-to-alls, makespan shrinking with ranks."""
    n, k = 32, 8
    spec = GaussianKernel(n=n, sigma=1.5).spectrum()
    field = np.zeros((n, n, n))
    field[8:24, 8:24, 8:24] = 1.0
    runner = DistributedLowCommConvolution(
        n, k, spec, SamplingPolicy.flat_rate(2), batch=256
    )

    rep4 = benchmark(runner.run, field, 4)
    rep1 = runner.run(field, 1)
    exact = reference_convolve(field, spec)
    emit(
        f"P=1 makespan {rep1.makespan_s * 1e3:.2f} ms -> "
        f"P=4 makespan {rep4.makespan_s * 1e3:.2f} ms; "
        f"error {l2_relative_error(rep4.approx, exact):.4f}; "
        f"all-to-alls {rep4.alltoall_rounds}"
    )
    assert rep4.alltoall_rounds == 0
    assert rep4.makespan_s < rep1.makespan_s
    assert l2_relative_error(rep4.approx, exact) < 0.05
