"""E7 — Eqs 1, 2, 6: communication time of the traditional distributed FFT
vs our single sparse exchange, over worker counts.

Shape targets: T_ours < T_Comm,FFT everywhere (Eq 6 < Eq 1); the advantage
equals ``2 N^3 / (k^3 + (N^3-k^3)/r^3)`` independent of P in the
bandwidth-only model; with the alpha term included (Eq 2), the traditional
FFT degrades *faster* at large P because it pays per-message latency on
every one of its all-to-all stages.
"""

from conftest import emit

from repro.analysis.experiments import run_comm_time_sweep
from repro.analysis.tables import format_table
from repro.cluster.cost import comm_time_ours, comm_time_traditional_fft
from repro.cluster.network import Link


def test_eq1_vs_eq6_sweep(benchmark):
    rows = benchmark(run_comm_time_sweep)
    emit(
        format_table(
            ["P", "T_fft (s)", "T_ours (s)", "advantage"],
            rows,
            title="Eq 1 vs Eq 6 (N=1024, k=128, r=8)",
        )
    )
    for _p, t_fft, t_ours, adv in rows:
        assert t_ours < t_fft
        assert adv > 1


def test_latency_regimes(benchmark):
    """With Eq 2's alpha included, both pipelines become latency-bound at
    very large P and the advantage tends to the *round-count ratio* (two
    all-to-all stages vs one exchange) — rounds, not just volume, are what
    the Bruck-style lower bounds the paper cites are about."""
    link = Link(alpha_s=2e-6)

    def ratios():
        out = []
        for p in (64, 1024, 16384):
            t_fft = comm_time_traditional_fft(1024, p, link, include_latency=True)
            t_ours = comm_time_ours(1024, 128, 8, p, link, include_latency=True)
            out.append((p, t_fft / t_ours))
        return out

    rows = benchmark(ratios)
    emit(format_table(["P", "advantage (with alpha)"], rows, title="Eq 2 effect"))
    advantages = [a for _p, a in rows]
    # volume-dominated at moderate P: two-orders-of-magnitude advantage
    assert advantages[0] > 50
    # latency-dominated at extreme P: advantage approaches the 2:1 round ratio
    assert 1.5 < advantages[-1] < advantages[0]
    # monotone decline between regimes
    assert advantages[0] > advantages[1] > advantages[2]
