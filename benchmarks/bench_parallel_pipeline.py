"""Serial vs process-parallel vs Hermitian-fast-path pipeline timings.

Standalone script (not a pytest-benchmark module): runs the end-to-end
pipeline at n=64, k=16 in three configurations —

- ``serial``           — one process, full complex staged transform;
- ``serial_hermitian`` — one process, half-spectrum (real-kernel) path;
- ``parallel``         — process-pool fan-out (Hermitian path), all cores;

takes the median of ``--repeats`` runs each, and writes
``BENCH_pipeline.json`` (shared envelope schema via
:func:`repro.xpr.store.write_bench`) with the raw times, speedup ratios,
and the max-abs error of each configuration against the dense reference
convolution (they must agree: the fast paths are reorderings, not
approximations).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_pipeline.py \
        [--repeats N] [--output PATH] [--quick]
"""

from __future__ import annotations

import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.parallel import resolve_workers
from repro.core.pipeline import LowCommConvolution3D
from repro.core.policy import SamplingPolicy
from repro.core.reference import reference_convolve
from repro.kernels.gaussian import GaussianKernel
from repro.xpr.registry import bench_argument_parser
from repro.xpr.store import bench_envelope, write_bench

N, K, SIGMA, REPEATS, SEED = 64, 16, 2.0, 5, 0
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _median_time(fn, repeats: int):
    times = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), times, result


def main(
    repeats: int = REPEATS,
    output: Path | str = DEFAULT_OUTPUT,
    quick: bool = False,
) -> dict:
    n, k = (32, 8) if quick else (N, K)
    rng = np.random.default_rng(SEED)
    # Fully-active field: every sub-domain carries signal, so the timings
    # measure steady-state convolution throughput, not sparsity skipping.
    field = rng.standard_normal((n, n, n))
    spectrum = GaussianKernel(n=n, sigma=SIGMA).spectrum()
    exact = reference_convolve(field, spectrum)
    policy = SamplingPolicy.flat_rate(2)

    serial = LowCommConvolution3D(
        n, k, spectrum, policy, batch=4096, real_kernel=False
    )
    hermitian = LowCommConvolution3D(
        n, k, spectrum, policy, batch=4096, real_kernel=True
    )

    results = {}
    configs = [
        ("serial", lambda: serial.run_serial(field)),
        ("serial_hermitian", lambda: hermitian.run_serial(field)),
        ("parallel", lambda: hermitian.run_parallel(field)),
    ]
    for name, fn in configs:
        median, times, res = _median_time(fn, repeats)
        err = float(np.max(np.abs(res.approx - exact)))
        results[name] = {
            "median_s": median,
            "times_s": times,
            "max_abs_error": err,
        }
        print(f"{name:18s} median {median:7.3f} s  max|err| {err:.3e}")

    report = bench_envelope(
        "pipeline",
        n=n,
        k=k,
        repeats=repeats,
        results=results,
        workers_used=resolve_workers((n // k) ** 3),
        sigma=SIGMA,
        policy="flat:2",
        speedup={
            "hermitian_vs_serial": results["serial"]["median_s"]
            / results["serial_hermitian"]["median_s"],
            "parallel_vs_serial": results["serial"]["median_s"]
            / results["parallel"]["median_s"],
        },
    )
    out = write_bench(report, output)
    print(f"\nhermitian speedup {report['speedup']['hermitian_vs_serial']:.2f}x, "
          f"parallel speedup {report['speedup']['parallel_vs_serial']:.2f}x "
          f"({report['cpu_count']} cores) -> {out.name}")
    return report


if __name__ == "__main__":
    parser = bench_argument_parser(
        __doc__, default_output=str(DEFAULT_OUTPUT), default_repeats=REPEATS
    )
    args = parser.parse_args()
    main(repeats=args.repeats, output=args.output, quick=args.quick)
