"""E10 — §6 / Fig 5: the FFTX plan formulation of the MASSIF convolution.

Shape targets: the four-sub-plan composed plan produces the identical
compressed result as the hand-written pipeline; the optimizer fuses the
transform+pointwise pair (the cuFFT-callback replacement) without changing
results and reports a workspace saving.
"""

import numpy as np
from conftest import emit

from repro.core.local_conv import LocalConvolution
from repro.core.policy import SamplingPolicy
from repro.fftx import ExecutionStats, fftx_execute, massif_convolution_plan, optimize_plan
from repro.kernels.gaussian import GaussianKernel


def _setup(n=32, k=8):
    spec = GaussianKernel(n=n, sigma=1.5).spectrum()
    sub = 1.0 + 0.1 * np.random.default_rng(0).standard_normal((k, k, k))
    pol = SamplingPolicy.flat_rate(2)
    return n, k, spec, sub, pol


def test_fftx_plan_execution(benchmark):
    n, k, spec, sub, pol = _setup()
    plan, _ = massif_convolution_plan(n, k, (8, 8, 8), spec, policy=pol)

    out = benchmark(fftx_execute, plan, sub)
    ref = LocalConvolution(n, spec, pol).convolve(sub, (8, 8, 8))
    np.testing.assert_allclose(out.values, ref.values, atol=1e-10)
    emit(f"FFTX plan == hand-written pipeline ({out.pattern.sample_count} samples)")


def test_fftx_optimized_plan(benchmark):
    n, k, spec, sub, pol = _setup()
    plan, _ = massif_convolution_plan(n, k, (8, 8, 8), spec, policy=pol)
    optimized, report = optimize_plan(plan)

    out = benchmark(fftx_execute, optimized, sub)
    ref = fftx_execute(plan, sub)
    np.testing.assert_allclose(out.values, ref.values, atol=1e-12)
    emit(
        f"optimizer: fused {report.fused_pairs}, "
        f"{report.total_flops:.2e} flops, "
        f"workspace saving {100 * report.workspace_savings:.0f}%"
    )
    assert report.fused_pairs == [("dft_r2c", "pointwise_c2c")]


def test_fftx_observe_mode_breakdown(benchmark):
    n, k, spec, sub, pol = _setup()
    plan, _ = massif_convolution_plan(n, k, (8, 8, 8), spec, policy=pol)

    def observed():
        stats = ExecutionStats()
        fftx_execute(plan, sub, stats=stats)
        return stats

    stats = benchmark(observed)
    lines = [
        f"  {kind}: {sec * 1e3:.3f} ms, {nbytes / 1e6:.2f} MB out"
        for kind, sec, nbytes in stats.steps
    ]
    emit("observe-mode per-sub-plan breakdown:\n" + "\n".join(lines))
    assert len(stats.steps) == 4
