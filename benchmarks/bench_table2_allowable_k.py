"""E2 — Table 2: maximum allowable sub-domain k per grid size per GPU.

The paper's Table 2 is a memory-capacity result: the largest k whose
pipeline working set (including cuFFT temporaries) fits the device.  The
Table-4-calibrated memory model reproduces every row, including the
non-monotone drop to k <= 64 at N = 2048, and the 8x grid-points headline
(2048^3 for us vs cuFFT's 1024^3 dense ceiling on the same 32 GB V100).
"""

from conftest import emit

from repro.analysis.experiments import dense_gpu_ceiling, run_table2_allowable_k


def test_table2_allowable_k(benchmark):
    report = benchmark(run_table2_allowable_k)
    emit(report.render())
    assert report.max_ratio_deviation() < 1e-6  # every row matches the paper


def test_dense_ceiling_8x(benchmark):
    plain, ours = benchmark(dense_gpu_ceiling)
    emit(
        f"single V100-32GB ceiling: dense cuFFT N={plain}, ours N={ours} "
        f"({(ours / plain) ** 3:.0f}x more grid points)"
    )
    assert plain == 1024
    assert ours == 2048
