"""E5 — Figure 1: all-to-all rounds, traditional vs low-communication.

Both pipelines execute real data movement over the simulated cluster; the
communicator ledgers provide the counts.  Shape targets: the traditional
pencil convolution needs 4 all-to-all rounds (2 per transform, Fig 1a);
ours needs zero all-to-alls and exactly one sparse allgather (Fig 1b),
moving fewer bytes.
"""

from conftest import emit

from repro.analysis.experiments import run_fig1_comm_rounds
from repro.analysis.tables import format_table


def test_fig1_comm_rounds(benchmark):
    res = benchmark(run_fig1_comm_rounds)
    emit(
        format_table(
            ["pipeline", "all-to-all rounds", "bytes on wire"],
            [
                ["traditional (pencil FFT conv)", res.traditional_rounds, res.traditional_bytes],
                ["ours (local conv + 1 sparse exchange)", res.ours_rounds, res.ours_bytes],
            ],
            title="Figure 1: communication pattern",
        )
    )
    assert res.traditional_rounds == 4
    assert res.ours_rounds == 0
    assert res.ours_bytes < res.traditional_bytes
    assert res.results_match  # traditional is exact
    assert res.approx_error < 0.15  # ours approximates at this toy scale
